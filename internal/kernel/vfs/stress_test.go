package vfs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gowali/internal/linux"
)

// The namespace stress suite is parameterized over a root prefix so the
// differential backend tests (backend_test.go) can run the identical
// workload against memfs (the root tree), a mounted MemFS, hostfs and
// overlayfs. The plain tests below run it on the root tree, exactly as
// before.

// stressRoot walks prefix ("" = root) to the subtree root inode.
func stressRoot(t *testing.T, fs *FS, prefix string) *Inode {
	t.Helper()
	if prefix == "" {
		return fs.Root
	}
	r, errno := fs.Walk("/", prefix, true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk stress root %s: errno=%v", prefix, errno)
	}
	return r.Node
}

// runParallelNamespaceStress drives create/rename/unlink/readdir/walk
// from many goroutines over overlapping directory trees under prefix.
// It is primarily a -race exercise of the fine-grained locking
// (per-inode RWMutex, sharded dentry cache, parent-ordered rename, and
// on non-memfs mounts the proxy-inode table), plus a consistency check
// that the tree survives: every directory still lists and walks.
func runParallelNamespaceStress(t *testing.T, fs *FS, prefix string) {
	const dirs = 4
	for i := 0; i < dirs; i++ {
		if fs.MkdirAll(fmt.Sprintf("%s/d%d/sub", prefix, i), 0o755) == nil {
			t.Fatalf("mkdirall %s/d%d/sub failed", prefix, i)
		}
	}

	const workers = 8
	iters := 400
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				d1 := rng.Intn(dirs)
				d2 := rng.Intn(dirs)
				name := fmt.Sprintf("f%d", rng.Intn(16))
				src := fmt.Sprintf("%s/d%d/%s", prefix, d1, name)
				dst := fmt.Sprintf("%s/d%d/sub/%s", prefix, d2, name)
				switch rng.Intn(6) {
				case 0:
					fs.Create("/", src, linux.S_IFREG|0o644, 0, 0, false)
				case 1:
					fs.Rename("/", src, dst)
				case 2:
					fs.Rename("/", dst, src)
				case 3:
					fs.Unlink("/", src, false)
				case 4:
					if r, errno := fs.Walk("/", fmt.Sprintf("%s/d%d", prefix, d1), true); errno == 0 && r.Node != nil {
						r.Node.List()
					}
				case 5:
					fs.Walk("/", dst, true)
				}
			}
		}(g)
	}
	wg.Wait()

	// The tree must still be fully walkable and every entry resolvable.
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("%s/d%d", prefix, i)
		r, errno := fs.Walk("/", dir, true)
		if errno != 0 || r.Node == nil {
			t.Fatalf("walk %s after stress: errno=%v", dir, errno)
		}
		for _, ent := range r.Node.List() {
			if _, errno := fs.Walk("/", dir+"/"+ent.Name, false); errno != 0 {
				t.Errorf("entry %s/%s listed but not walkable: %v", dir, ent.Name, errno)
			}
		}
	}
}

func TestParallelNamespaceStress(t *testing.T) {
	runParallelNamespaceStress(t, New(nil), "")
}

// runParallelDirRenameCycle: concurrent cross-directory renames of
// directories must never create a cycle (a directory inside itself) or
// deadlock. The ancestry check under renameMu (prefix check on proxy
// mounts) rejects such moves with EINVAL.
func runParallelDirRenameCycle(t *testing.T, fs *FS, prefix string) {
	fs.MkdirAll(prefix+"/a/b/c", 0o755)
	fs.MkdirAll(prefix+"/x", 0o755)

	if errno := fs.Rename("/", prefix+"/a", prefix+"/a/b/c/a"); errno != linux.EINVAL {
		t.Fatalf("rename into own subtree: got %v, want EINVAL", errno)
	}

	var wg sync.WaitGroup
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shuttle /x under /a/b and back while another goroutine
				// attempts the inverse; EINVAL/ENOENT/EXDEV outcomes are
				// fine, cycles and deadlocks are not.
				if g%2 == 0 {
					fs.Rename("/", prefix+"/x", prefix+"/a/b/x")
					fs.Rename("/", prefix+"/a/b/x", prefix+"/x")
				} else {
					fs.Rename("/", prefix+"/a/b", prefix+"/x/b")
					fs.Rename("/", prefix+"/x/b", prefix+"/a/b")
				}
			}
		}(g)
	}
	wg.Wait()

	// No node may be its own ancestor.
	root := stressRoot(t, fs, prefix)
	for _, path := range []string{prefix + "/a", prefix + "/a/b", prefix + "/x"} {
		r, errno := fs.Walk("/", path, true)
		if errno != 0 || r.Node == nil {
			continue // may legitimately have moved
		}
		seen := map[*Inode]bool{}
		for cur := r.Node; cur != root && cur != fs.Root; cur = cur.Parent() {
			if seen[cur] {
				t.Fatalf("cycle detected through %s", path)
			}
			seen[cur] = true
			if cur.Parent() == cur {
				break
			}
		}
	}
}

func TestParallelDirRenameCycle(t *testing.T) {
	runParallelDirRenameCycle(t, New(nil), "")
}

// runRenameAncestorTargetNoDeadlock: renaming over a directory that is
// an ancestor of the source's parent must fail (ENOTEMPTY — it contains
// the source chain) without ever locking the ancestor, and must not
// deadlock against concurrent renames replacing directories lower in
// the same chain.
func runRenameAncestorTargetNoDeadlock(t *testing.T, fs *FS, prefix string) {
	fs.MkdirAll(prefix+"/a/b/x", 0o755)
	fs.MkdirAll(prefix+"/a/w", 0o755)

	if errno := fs.Rename("/", prefix+"/a/b/x", prefix+"/a"); errno != linux.ENOTEMPTY {
		t.Fatalf("rename over ancestor: got %v, want ENOTEMPTY", errno)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		iters := 300
		if testing.Short() {
			iters = 50
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if g == 0 {
						fs.Rename("/", prefix+"/a/b/x", prefix+"/a") // ENOTEMPTY, ancestor target
					} else {
						fs.Rename("/", prefix+"/a/w", prefix+"/a/b") // ENOTEMPTY, dir-replacing
					}
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent ancestor-target renames deadlocked")
	}
}

func TestRenameAncestorTargetNoDeadlock(t *testing.T) {
	runRenameAncestorTargetNoDeadlock(t, New(nil), "")
}

// runCreateIntoRemovedDir: creating into a directory that has been
// rmdir'd (a walk can race ahead of the removal) must fail with ENOENT,
// not succeed onto an unreachable inode.
func runCreateIntoRemovedDir(t *testing.T, fs *FS, prefix string) {
	fs.MkdirAll(prefix+"/gone", 0o755)
	r, errno := fs.Walk("/", prefix+"/gone", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk: %v", errno)
	}
	if errno := fs.Unlink("/", prefix+"/gone", true); errno != 0 {
		t.Fatalf("rmdir: %v", errno)
	}
	// Simulate the racer that already resolved /gone: insert through the
	// detached inode exactly as Create's locked section would.
	dead := r.Node
	dead.mu.Lock()
	nlink := dead.nlink
	dead.mu.Unlock()
	if nlink != 0 {
		t.Fatalf("removed dir nlink=%d, want 0 (dead mark)", nlink)
	}
	if _, errno := fs.Create("/", prefix+"/gone/f", linux.S_IFREG|0o644, 0, 0, false); errno != linux.ENOENT {
		t.Fatalf("create into removed dir: got %v, want ENOENT", errno)
	}
}

func TestCreateIntoRemovedDir(t *testing.T) {
	runCreateIntoRemovedDir(t, New(nil), "")
}

// runDentryCacheCoherence: a cached lookup must never resurface an
// unlinked or renamed-away entry.
func runDentryCacheCoherence(t *testing.T, fs *FS, prefix string) {
	fs.MkdirAll(prefix+"/d", 0o755)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("%s/d/f%d", prefix, i%8)
		if _, errno := fs.Create("/", p, linux.S_IFREG|0o644, 0, 0, true); errno != 0 {
			t.Fatalf("create %s: %v", p, errno)
		}
		// Populate the dentry cache, then unlink and verify the miss.
		if r, errno := fs.Walk("/", p, true); errno != 0 || r.Node == nil {
			t.Fatalf("walk %s: %v", p, errno)
		}
		if errno := fs.Unlink("/", p, false); errno != 0 {
			t.Fatalf("unlink %s: %v", p, errno)
		}
		if r, _ := fs.Walk("/", p, true); r.Node != nil {
			t.Fatalf("unlinked %s still resolves", p)
		}
	}
	// Rename invalidates both names.
	fs.Create("/", prefix+"/d/old", linux.S_IFREG|0o644, 0, 0, true)
	fs.Walk("/", prefix+"/d/old", true)
	if errno := fs.Rename("/", prefix+"/d/old", prefix+"/d/new"); errno != 0 {
		t.Fatalf("rename: %v", errno)
	}
	if r, _ := fs.Walk("/", prefix+"/d/old", true); r.Node != nil {
		t.Fatal("renamed-away name still resolves")
	}
	if r, _ := fs.Walk("/", prefix+"/d/new", true); r.Node == nil {
		t.Fatal("rename target does not resolve")
	}
}

func TestDentryCacheCoherence(t *testing.T) {
	runDentryCacheCoherence(t, New(nil), "")
}

package vfs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gowali/internal/linux"
)

// TestParallelNamespaceStress drives create/rename/unlink/readdir/walk
// from many goroutines over overlapping directory trees. It is primarily
// a -race exercise of the fine-grained locking (per-inode RWMutex,
// sharded dentry cache, parent-ordered rename), plus a consistency check
// that the tree survives: every directory still lists and walks.
func TestParallelNamespaceStress(t *testing.T) {
	fs := New(nil)
	const dirs = 4
	for i := 0; i < dirs; i++ {
		fs.MkdirAll(fmt.Sprintf("/d%d/sub", i), 0o755)
	}

	const workers = 8
	iters := 400
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				d1 := rng.Intn(dirs)
				d2 := rng.Intn(dirs)
				name := fmt.Sprintf("f%d", rng.Intn(16))
				src := fmt.Sprintf("/d%d/%s", d1, name)
				dst := fmt.Sprintf("/d%d/sub/%s", d2, name)
				switch rng.Intn(6) {
				case 0:
					fs.Create("/", src, linux.S_IFREG|0o644, 0, 0, false)
				case 1:
					fs.Rename("/", src, dst)
				case 2:
					fs.Rename("/", dst, src)
				case 3:
					fs.Unlink("/", src, false)
				case 4:
					if r, errno := fs.Walk("/", fmt.Sprintf("/d%d", d1), true); errno == 0 && r.Node != nil {
						r.Node.List()
					}
				case 5:
					fs.Walk("/", dst, true)
				}
			}
		}(g)
	}
	wg.Wait()

	// The tree must still be fully walkable and every entry resolvable.
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("/d%d", i)
		r, errno := fs.Walk("/", dir, true)
		if errno != 0 || r.Node == nil {
			t.Fatalf("walk %s after stress: errno=%v", dir, errno)
		}
		for _, ent := range r.Node.List() {
			if _, errno := fs.Walk("/", dir+"/"+ent.Name, false); errno != 0 {
				t.Errorf("entry %s/%s listed but not walkable: %v", dir, ent.Name, errno)
			}
		}
	}
}

// TestParallelDirRenameCycle: concurrent cross-directory renames of
// directories must never create a cycle (a directory inside itself) or
// deadlock. The ancestry check under renameMu rejects such moves with
// EINVAL.
func TestParallelDirRenameCycle(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/a/b/c", 0o755)
	fs.MkdirAll("/x", 0o755)

	if errno := fs.Rename("/", "/a", "/a/b/c/a"); errno != linux.EINVAL {
		t.Fatalf("rename into own subtree: got %v, want EINVAL", errno)
	}

	var wg sync.WaitGroup
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Shuttle /x under /a/b and back while another goroutine
				// attempts the inverse; EINVAL/ENOENT outcomes are fine,
				// cycles and deadlocks are not.
				if g%2 == 0 {
					fs.Rename("/", "/x", "/a/b/x")
					fs.Rename("/", "/a/b/x", "/x")
				} else {
					fs.Rename("/", "/a/b", "/x/b")
					fs.Rename("/", "/x/b", "/a/b")
				}
			}
		}(g)
	}
	wg.Wait()

	// No node may be its own ancestor.
	for _, path := range []string{"/a", "/a/b", "/x"} {
		r, errno := fs.Walk("/", path, true)
		if errno != 0 || r.Node == nil {
			continue // may legitimately have moved
		}
		seen := map[*Inode]bool{}
		for cur := r.Node; cur != fs.Root; cur = cur.Parent() {
			if seen[cur] {
				t.Fatalf("cycle detected through %s", path)
			}
			seen[cur] = true
		}
	}
}

// TestRenameAncestorTargetNoDeadlock: renaming over a directory that is
// an ancestor of the source's parent must fail (ENOTEMPTY — it contains
// the source chain) without ever locking the ancestor, and must not
// deadlock against concurrent renames replacing directories lower in
// the same chain.
func TestRenameAncestorTargetNoDeadlock(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/a/b/x", 0o755)
	fs.MkdirAll("/a/w", 0o755)

	if errno := fs.Rename("/", "/a/b/x", "/a"); errno != linux.ENOTEMPTY {
		t.Fatalf("rename over ancestor: got %v, want ENOTEMPTY", errno)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		iters := 300
		if testing.Short() {
			iters = 50
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if g == 0 {
						fs.Rename("/", "/a/b/x", "/a") // ENOTEMPTY, ancestor target
					} else {
						fs.Rename("/", "/a/w", "/a/b") // ENOTEMPTY, dir-replacing
					}
				}
			}(g)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent ancestor-target renames deadlocked")
	}
}

// TestCreateIntoRemovedDir: creating into a directory that has been
// rmdir'd (a walk can race ahead of the removal) must fail with ENOENT,
// not succeed onto an unreachable inode.
func TestCreateIntoRemovedDir(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/gone", 0o755)
	r, errno := fs.Walk("/", "/gone", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk: %v", errno)
	}
	if errno := fs.Unlink("/", "/gone", true); errno != 0 {
		t.Fatalf("rmdir: %v", errno)
	}
	// Simulate the racer that already resolved /gone: insert through the
	// detached inode exactly as Create's locked section would.
	dead := r.Node
	dead.mu.Lock()
	nlink := dead.nlink
	dead.mu.Unlock()
	if nlink != 0 {
		t.Fatalf("removed dir nlink=%d, want 0 (dead mark)", nlink)
	}
	if _, errno := fs.Create("/", "/gone/f", linux.S_IFREG|0o644, 0, 0, false); errno != linux.ENOENT {
		t.Fatalf("create into removed dir: got %v, want ENOENT", errno)
	}
}

// TestDentryCacheCoherence: a cached lookup must never resurface an
// unlinked or renamed-away entry.
func TestDentryCacheCoherence(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/d", 0o755)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/d/f%d", i%8)
		if _, errno := fs.Create("/", p, linux.S_IFREG|0o644, 0, 0, true); errno != 0 {
			t.Fatalf("create %s: %v", p, errno)
		}
		// Populate the dentry cache, then unlink and verify the miss.
		if r, errno := fs.Walk("/", p, true); errno != 0 || r.Node == nil {
			t.Fatalf("walk %s: %v", p, errno)
		}
		if errno := fs.Unlink("/", p, false); errno != 0 {
			t.Fatalf("unlink %s: %v", p, errno)
		}
		if r, _ := fs.Walk("/", p, true); r.Node != nil {
			t.Fatalf("unlinked %s still resolves", p)
		}
	}
	// Rename invalidates both names.
	fs.Create("/", "/d/old", linux.S_IFREG|0o644, 0, 0, true)
	fs.Walk("/", "/d/old", true)
	if errno := fs.Rename("/", "/d/old", "/d/new"); errno != 0 {
		t.Fatalf("rename: %v", errno)
	}
	if r, _ := fs.Walk("/", "/d/old", true); r.Node != nil {
		t.Fatal("renamed-away name still resolves")
	}
	if r, _ := fs.Walk("/", "/d/new", true); r.Node == nil {
		t.Fatal("rename target does not resolve")
	}
}

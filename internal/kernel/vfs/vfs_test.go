package vfs

import (
	"testing"
	"testing/quick"
	"time"

	"gowali/internal/linux"
)

func newFS() *FS {
	return New(func() linux.Timespec { return linux.Timespec{Sec: 1} })
}

func TestWalkAbsoluteAndRelative(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b/c", 0o755)
	r, errno := fs.Walk("/", "/a/b/c", true)
	if errno != 0 || r.Node == nil || !r.Node.IsDir() {
		t.Fatalf("walk abs: %v", errno)
	}
	r, errno = fs.Walk("/a", "b/c", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk rel: %v", errno)
	}
	r, errno = fs.Walk("/a/b", "../b/c", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk dotdot: %v", errno)
	}
	// Missing final component: Node nil, Parent set.
	r, errno = fs.Walk("/", "/a/b/nope", true)
	if errno != 0 || r.Node != nil || r.Parent == nil || r.Name != "nope" {
		t.Fatalf("missing final: %+v %v", r, errno)
	}
	// Missing intermediate: ENOENT.
	if _, errno := fs.Walk("/", "/zzz/c", true); errno != linux.ENOENT {
		t.Fatalf("missing intermediate: %v", errno)
	}
	// Through a file: ENOTDIR.
	fs.Create("/", "/a/file", linux.S_IFREG|0o644, 0, 0, true)
	if _, errno := fs.Walk("/", "/a/file/x", true); errno != linux.ENOTDIR {
		t.Fatalf("through file: %v", errno)
	}
}

func TestRootAndDotDotAboveRoot(t *testing.T) {
	fs := newFS()
	r, errno := fs.Walk("/", "/", true)
	if errno != 0 || r.Node != fs.Root {
		t.Fatalf("walk /: %v", errno)
	}
	// ".." above root stays at root.
	r, errno = fs.Walk("/", "/../../..", true)
	if errno != 0 || r.Node != fs.Root {
		t.Fatalf("above root: %v node=%v", errno, r.Node)
	}
}

func TestInodeDataOps(t *testing.T) {
	fs := newFS()
	n, errno := fs.Create("/", "/f", linux.S_IFREG|0o644, 0, 0, true)
	if errno != 0 {
		t.Fatal(errno)
	}
	// Sparse write.
	if _, errno := n.WriteAt([]byte("end"), 100); errno != 0 {
		t.Fatal(errno)
	}
	if n.Size() != 103 {
		t.Fatalf("size %d", n.Size())
	}
	buf := make([]byte, 10)
	cnt, _ := n.ReadAt(buf, 0)
	for i := 0; i < cnt; i++ {
		if buf[i] != 0 {
			t.Fatal("sparse gap not zero")
		}
	}
	cnt, _ = n.ReadAt(buf, 100)
	if string(buf[:cnt]) != "end" {
		t.Fatalf("read %q", buf[:cnt])
	}
	// EOF.
	if cnt, errno := n.ReadAt(buf, 1000); cnt != 0 || errno != 0 {
		t.Fatalf("eof: %d %v", cnt, errno)
	}
	// Truncate shrink + grow.
	n.Truncate(2)
	if n.Size() != 2 {
		t.Fatal("shrink failed")
	}
	n.Truncate(50)
	cnt, _ = n.ReadAt(buf, 40)
	if cnt != 10 || buf[0] != 0 {
		t.Fatal("grow not zero-filled")
	}
}

func TestDirEntriesSorted(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/d", 0o755)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		fs.Create("/", "/d/"+name, linux.S_IFREG|0o644, 0, 0, true)
	}
	r, _ := fs.Walk("/", "/d", true)
	ents := r.Node.List()
	if len(ents) != 3 || ents[0].Name != "alpha" || ents[2].Name != "zeta" {
		t.Fatalf("entries: %+v", ents)
	}
	if ents[0].Type != linux.DT_REG {
		t.Fatalf("dtype %d", ents[0].Type)
	}
}

func TestPipeEOFAndEPIPE(t *testing.T) {
	p := NewPipe()
	p.AddReader()
	p.AddWriter()
	if n, errno := p.Write([]byte("xy"), false); n != 2 || errno != 0 {
		t.Fatalf("write: %d %v", n, errno)
	}
	buf := make([]byte, 8)
	if n, _ := p.Read(buf, false); n != 2 {
		t.Fatalf("read %d", n)
	}
	p.CloseWriter()
	if n, errno := p.Read(buf, false); n != 0 || errno != 0 {
		t.Fatalf("eof: %d %v", n, errno)
	}
	p2 := NewPipe()
	p2.AddWriter()
	if _, errno := p2.Write([]byte("x"), false); errno != linux.EPIPE {
		t.Fatalf("no-reader write: %v", errno)
	}
}

func TestPipeBlockingHandoff(t *testing.T) {
	p := NewPipe()
	p.AddReader()
	p.AddWriter()
	done := make(chan int, 1)
	go func() {
		buf := make([]byte, 4)
		n, _ := p.Read(buf, false)
		done <- n
	}()
	time.Sleep(time.Millisecond)
	p.Write([]byte("go"), false)
	if n := <-done; n != 2 {
		t.Fatalf("handoff read %d", n)
	}
}

func TestPipePollStates(t *testing.T) {
	p := NewPipe()
	p.AddReader()
	p.AddWriter()
	if ev := p.Poll(true); ev&linux.POLLIN != 0 {
		t.Error("empty pipe readable")
	}
	if ev := p.Poll(false); ev&linux.POLLOUT == 0 {
		t.Error("fresh pipe not writable")
	}
	p.Write([]byte("z"), false)
	if ev := p.Poll(true); ev&linux.POLLIN == 0 {
		t.Error("non-empty pipe not readable")
	}
	p.CloseWriter()
	if ev := p.Poll(true); ev&linux.POLLHUP == 0 {
		t.Error("writer-closed pipe missing POLLHUP")
	}
}

// TestWalkNeverPanicsProperty: arbitrary path strings must resolve or
// fail with an errno, never panic.
func TestWalkNeverPanicsProperty(t *testing.T) {
	fs := newFS()
	fs.MkdirAll("/a/b", 0o755)
	fs.Symlink("/", "/a/loop", "/a/ln", 0, 0)
	f := func(segs []uint8) bool {
		parts := []string{"a", "b", "..", ".", "ln", "x", "/", ""}
		path := ""
		for _, s := range segs {
			path += "/" + parts[int(s)%len(parts)]
		}
		fs.Walk("/", path, true)
		fs.Walk("/a", path, false)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHardLinkNlinkAccounting(t *testing.T) {
	fs := newFS()
	fs.Create("/", "/orig", linux.S_IFREG|0o644, 0, 0, true)
	fs.Link("/", "/orig", "/copy")
	r, _ := fs.Walk("/", "/copy", true)
	if r.Node.Stat().Nlink != 2 {
		t.Fatalf("nlink %d", r.Node.Stat().Nlink)
	}
	fs.Unlink("/", "/orig", false)
	r2, errno := fs.Walk("/", "/copy", true)
	if errno != 0 || r2.Node == nil {
		t.Fatal("hard link lost after unlinking original")
	}
	if r2.Node.Stat().Nlink != 1 {
		t.Fatalf("nlink after unlink %d", r2.Node.Stat().Nlink)
	}
}

package vfs

import (
	"hash/maphash"
	"sync"
)

// Dentry cache: a sharded (mount, directory ino, name) → inode map in
// front of the per-directory children maps and backend lookups, so hot
// path components (/, /tmp, shared prefixes) resolve without touching
// the directory's lock — or the backend — at all.
//
// Coherence protocol: a cache entry for (mnt, dir, name) is only ever
// inserted while holding dir's inode lock in read mode, and only ever
// invalidated while holding it in write mode (every namespace mutation
// — create, unlink, link, rename — runs under the parent's write lock,
// on proxy mounts too). The two modes exclude each other, so a lookup
// can never re-populate an entry a concurrent unlink just invalidated:
// there are no stale entries, only misses. Shard locks nest strictly
// inside inode locks.
//
// Keys carry the mount ID so distinct mounts can never alias (inode
// numbers are per-mount), and so unmount can sweep a whole mount's
// entries; mount IDs are never reused, which makes any entry surviving
// the sweep (an insert racing the unmount) unreachable garbage rather
// than a stale hit for a later mount at the same path.
const dcacheShards = 64

// dcacheShardCap bounds each shard; beyond it a random entry is evicted.
// Eviction is always safe — a miss falls back to the filesystem.
const dcacheShardCap = 4096

type dentKey struct {
	mnt  uint64 // mount ID
	dir  uint64 // directory inode number within the mount
	name string
}

type dcacheShard struct {
	mu sync.RWMutex
	m  map[dentKey]*Inode
	_  [32]byte // round the 32-byte payload up to a full cache line
}

var dentSeed = maphash.MakeSeed()

func (fs *FS) dshard(mnt, dir uint64, name string) *dcacheShard {
	return &fs.dcache[maphash.Comparable(dentSeed, dentKey{mnt, dir, name})%dcacheShards]
}

// dcacheGet returns the cached child, or nil on miss.
func (fs *FS) dcacheGet(mnt, dir uint64, name string) *Inode {
	sh := fs.dshard(mnt, dir, name)
	sh.mu.RLock()
	n := sh.m[dentKey{mnt, dir, name}]
	sh.mu.RUnlock()
	return n
}

// dcachePut caches a positive lookup. Caller holds the directory's inode
// lock in (at least) read mode.
func (fs *FS) dcachePut(mnt, dir uint64, name string, n *Inode) {
	sh := fs.dshard(mnt, dir, name)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[dentKey]*Inode)
	}
	if len(sh.m) >= dcacheShardCap {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[dentKey{mnt, dir, name}] = n
	sh.mu.Unlock()
}

// dcacheDelete invalidates (mnt, dir, name). Caller holds the directory's
// inode lock in write mode.
func (fs *FS) dcacheDelete(mnt, dir uint64, name string) {
	sh := fs.dshard(mnt, dir, name)
	sh.mu.Lock()
	delete(sh.m, dentKey{mnt, dir, name})
	sh.mu.Unlock()
}

// dcacheDropMount sweeps every entry belonging to one mount (unmount).
func (fs *FS) dcacheDropMount(mnt uint64) {
	for i := range fs.dcache {
		sh := &fs.dcache[i]
		sh.mu.Lock()
		for k := range sh.m {
			if k.mnt == mnt {
				delete(sh.m, k)
			}
		}
		sh.mu.Unlock()
	}
}

package vfs

import (
	"hash/maphash"
	"sync"
)

// Dentry cache: a sharded (directory ino, name) → inode map in front of
// the per-directory children maps, so hot path components (/, /tmp,
// shared prefixes) resolve without touching the directory's lock at all.
//
// Coherence protocol: a cache entry for (dir, name) is only ever
// inserted while holding dir's inode lock in read mode, and only ever
// invalidated while holding it in write mode (every namespace mutation
// — create, unlink, link, rename — runs under the parent's write lock).
// The two modes exclude each other, so a lookup can never re-populate an
// entry a concurrent unlink just invalidated: there are no stale
// entries, only misses. Shard locks nest strictly inside inode locks.
const dcacheShards = 64

// dcacheShardCap bounds each shard; beyond it a random entry is evicted.
// Eviction is always safe — a miss falls back to the directory map.
const dcacheShardCap = 4096

type dentKey struct {
	dir  uint64 // directory inode number
	name string
}

type dcacheShard struct {
	mu sync.RWMutex
	m  map[dentKey]*Inode
	_  [32]byte // round the 32-byte payload up to a full cache line
}

var dentSeed = maphash.MakeSeed()

func (fs *FS) dshard(dir uint64, name string) *dcacheShard {
	return &fs.dcache[maphash.Comparable(dentSeed, dentKey{dir, name})%dcacheShards]
}

// dcacheGet returns the cached child, or nil on miss.
func (fs *FS) dcacheGet(dir uint64, name string) *Inode {
	sh := fs.dshard(dir, name)
	sh.mu.RLock()
	n := sh.m[dentKey{dir, name}]
	sh.mu.RUnlock()
	return n
}

// dcachePut caches a positive lookup. Caller holds the directory's inode
// lock in (at least) read mode.
func (fs *FS) dcachePut(dir uint64, name string, n *Inode) {
	sh := fs.dshard(dir, name)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[dentKey]*Inode)
	}
	if len(sh.m) >= dcacheShardCap {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[dentKey{dir, name}] = n
	sh.mu.Unlock()
}

// dcacheDelete invalidates (dir, name). Caller holds the directory's
// inode lock in write mode.
func (fs *FS) dcacheDelete(dir uint64, name string) {
	sh := fs.dshard(dir, name)
	sh.mu.Lock()
	delete(sh.m, dentKey{dir, name})
	sh.mu.Unlock()
}

package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gowali/internal/linux"
)

// Differential suite: the namespace stress tests of stress_test.go run
// identically against every shipped backend, mounted at /mnt of a
// fresh FS — memfs natively grafted, hostfs over a temp host dir, and
// overlayfs (memfs-seeded read-only lower, in-memory upper).

type backendCase struct {
	name string
	make func(t *testing.T) Backend
}

func backendCases() []backendCase {
	return []backendCase{
		{"memfs", func(t *testing.T) Backend { return NewMemFS(nil) }},
		{"hostfs", func(t *testing.T) Backend {
			h, err := NewHostFS(t.TempDir(), false)
			if err != nil {
				t.Fatalf("hostfs: %v", err)
			}
			t.Cleanup(func() { h.Close() })
			return h
		}},
		{"overlayfs", func(t *testing.T) Backend {
			lower := NewMemFS(nil)
			lower.Mkdir("seed", 0o755)
			lower.Create("seed/base.txt", 0o644)
			lower.WriteAt("seed/base.txt", []byte("lower"), 0)
			return NewOverlayFS(lower, nil)
		}},
	}
}

// mountAt builds a fresh FS with backend b mounted at /mnt.
func mountAt(t *testing.T, b Backend, opts MountOptions) *FS {
	t.Helper()
	fs := New(nil)
	if fs.MkdirAll("/mnt", 0o755) == nil {
		t.Fatal("mkdir /mnt")
	}
	if errno := fs.Mount("/mnt", b, opts); errno != 0 {
		t.Fatalf("mount: %v", errno)
	}
	return fs
}

func TestBackendDifferential(t *testing.T) {
	suites := []struct {
		name string
		run  func(*testing.T, *FS, string)
	}{
		{"NamespaceStress", runParallelNamespaceStress},
		{"DirRenameCycle", runParallelDirRenameCycle},
		{"RenameAncestorTarget", runRenameAncestorTargetNoDeadlock},
		{"CreateIntoRemovedDir", runCreateIntoRemovedDir},
		{"DentryCacheCoherence", runDentryCacheCoherence},
	}
	for _, bc := range backendCases() {
		for _, s := range suites {
			t.Run(bc.name+"/"+s.name, func(t *testing.T) {
				fs := mountAt(t, bc.make(t), MountOptions{})
				s.run(t, fs, "/mnt")
			})
		}
	}
}

// TestBackendFileIO: the basic data path (create, write, pread, stat,
// truncate, readdir, unlink) behaves identically across backends.
func TestBackendFileIO(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			fs := mountAt(t, bc.make(t), MountOptions{})
			if errno := fs.WriteFile("/mnt/f.txt", []byte("hello backend"), 0o644); errno != 0 {
				t.Fatalf("write: %v", errno)
			}
			r, errno := fs.Walk("/", "/mnt/f.txt", true)
			if errno != 0 || r.Node == nil {
				t.Fatalf("walk: %v", errno)
			}
			if got := r.Node.Size(); got != 13 {
				t.Fatalf("size %d, want 13", got)
			}
			st := r.Node.Stat()
			if st.Mode&linux.S_IFMT != linux.S_IFREG {
				t.Fatalf("mode %o", st.Mode)
			}
			buf := make([]byte, 5)
			if n, errno := r.Node.ReadAt(buf, 6); errno != 0 || string(buf[:n]) != "backe" {
				t.Fatalf("pread: %q %v", buf[:n], errno)
			}
			// Walking again must yield the same inode (stable identity).
			r2, _ := fs.Walk("/", "/mnt/f.txt", true)
			if r2.Node != r.Node {
				t.Fatal("inode identity not stable across walks")
			}
			if errno := r.Node.Truncate(5); errno != 0 {
				t.Fatalf("truncate: %v", errno)
			}
			if got := r.Node.Size(); got != 5 {
				t.Fatalf("size after truncate %d", got)
			}
			fs.MkdirAll("/mnt/sub", 0o755)
			dr, _ := fs.Walk("/", "/mnt", true)
			var names []string
			for _, e := range dr.Node.List() {
				names = append(names, e.Name)
			}
			want := map[string]bool{"f.txt": true, "sub": true}
			for _, n := range names {
				delete(want, n)
			}
			if len(want) != 0 {
				t.Fatalf("readdir missing %v (got %v)", want, names)
			}
			if errno := fs.Unlink("/", "/mnt/f.txt", false); errno != 0 {
				t.Fatalf("unlink: %v", errno)
			}
			if r, _ := fs.Walk("/", "/mnt/f.txt", true); r.Node != nil {
				t.Fatal("unlinked file still resolves")
			}
		})
	}
}

// TestCrossMountRenameEXDEV: renames and hard links never cross a
// mount boundary.
func TestCrossMountRenameEXDEV(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			fs := mountAt(t, bc.make(t), MountOptions{})
			fs.WriteFile("/mnt/a.txt", []byte("x"), 0o644)
			fs.WriteFile("/rootfile", []byte("y"), 0o644)
			if errno := fs.Rename("/", "/mnt/a.txt", "/a.txt"); errno != linux.EXDEV {
				t.Fatalf("rename mount->root: got %v, want EXDEV", errno)
			}
			if errno := fs.Rename("/", "/rootfile", "/mnt/rootfile"); errno != linux.EXDEV {
				t.Fatalf("rename root->mount: got %v, want EXDEV", errno)
			}
			if errno := fs.Link("/", "/mnt/a.txt", "/a.txt"); errno != linux.EXDEV {
				t.Fatalf("link across mounts: got %v, want EXDEV", errno)
			}
		})
	}
}

// TestReadOnlyMountEROFS: every mutation through a read-only mount
// fails with EROFS while reads keep working — for both a read-only
// backend (hostfs ro) and a read-only mount of a writable backend.
func TestReadOnlyMountEROFS(t *testing.T) {
	cases := []struct {
		name string
		make func(t *testing.T) (Backend, MountOptions)
	}{
		{"hostfs-ro-backend", func(t *testing.T) (Backend, MountOptions) {
			dir := t.TempDir()
			os.WriteFile(filepath.Join(dir, "ro.txt"), []byte("stay"), 0o644)
			h, err := NewHostFS(dir, true)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { h.Close() })
			return h, MountOptions{}
		}},
		{"memfs-ro-mount", func(t *testing.T) (Backend, MountOptions) {
			m := NewMemFS(nil)
			m.Create("ro.txt", 0o644)
			m.WriteAt("ro.txt", []byte("stay"), 0)
			return m, MountOptions{ReadOnly: true}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, opts := tc.make(t)
			fs := mountAt(t, b, opts)
			r, errno := fs.Walk("/", "/mnt/ro.txt", true)
			if errno != 0 || r.Node == nil {
				t.Fatalf("walk ro file: %v", errno)
			}
			buf := make([]byte, 4)
			if n, errno := r.Node.ReadAt(buf, 0); errno != 0 || string(buf[:n]) != "stay" {
				t.Fatalf("read on ro mount: %q %v", buf[:n], errno)
			}
			if _, errno := r.Node.WriteAt([]byte("z"), 0); errno != linux.EROFS {
				t.Fatalf("write: got %v, want EROFS", errno)
			}
			if errno := r.Node.Truncate(0); errno != linux.EROFS {
				t.Fatalf("truncate: got %v, want EROFS", errno)
			}
			if _, errno := fs.Create("/", "/mnt/new", linux.S_IFREG|0o644, 0, 0, true); errno != linux.EROFS {
				t.Fatalf("create: got %v, want EROFS", errno)
			}
			if _, errno := fs.Mkdir("/", "/mnt/newdir", 0o755, 0, 0); errno != linux.EROFS {
				t.Fatalf("mkdir: got %v, want EROFS", errno)
			}
			if errno := fs.Unlink("/", "/mnt/ro.txt", false); errno != linux.EROFS {
				t.Fatalf("unlink: got %v, want EROFS", errno)
			}
			if errno := fs.Rename("/", "/mnt/ro.txt", "/mnt/moved"); errno != linux.EROFS {
				t.Fatalf("rename: got %v, want EROFS", errno)
			}
			// Reads still fine after the failed mutations.
			if n, errno := r.Node.ReadAt(buf, 0); errno != 0 || string(buf[:n]) != "stay" {
				t.Fatalf("read after EROFS storm: %q %v", buf[:n], errno)
			}
		})
	}
}

// TestOverlayCopyUp: writes through an overlay land in the upper layer
// and never touch the lower backend; deletions whiteout lower entries;
// a fresh directory over a deleted one hides the old contents.
func TestOverlayCopyUp(t *testing.T) {
	lower := NewMemFS(nil)
	lower.Mkdir("dir", 0o755)
	lower.Create("dir/keep.txt", 0o644)
	lower.WriteAt("dir/keep.txt", []byte("keep"), 0)
	lower.Create("dir/edit.txt", 0o644)
	lower.WriteAt("dir/edit.txt", []byte("original"), 0)
	lower.Create("dir/gone.txt", 0o644)

	upper := NewMemFS(nil)
	fs := mountAt(t, NewOverlayFS(lower, upper), MountOptions{})

	// Copy-up write: merged view changes, lower stays pristine.
	r, errno := fs.Walk("/", "/mnt/dir/edit.txt", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk: %v", errno)
	}
	preIno := r.Node.Ino
	if _, errno := r.Node.WriteAt([]byte("REWRITE!"), 0); errno != 0 {
		t.Fatalf("copy-up write: %v", errno)
	}
	buf := make([]byte, 16)
	n, _ := r.Node.ReadAt(buf, 0)
	if string(buf[:n]) != "REWRITE!" {
		t.Fatalf("merged read %q", buf[:n])
	}
	ln := make([]byte, 16)
	cnt, errno := lower.ReadAt("dir/edit.txt", ln, 0)
	if errno != 0 || string(ln[:cnt]) != "original" {
		t.Fatalf("lower mutated: %q %v", ln[:cnt], errno)
	}
	// Copy-up preserves the VFS inode (open fds stay valid) — the
	// dentry cache must not serve a stale pre-copy-up identity either.
	r2, _ := fs.Walk("/", "/mnt/dir/edit.txt", true)
	if r2.Node == nil || r2.Node.Ino != preIno {
		t.Fatal("copy-up changed the inode identity")
	}

	// Partial copy-up: writing a slice preserves the untouched bytes.
	r3, _ := fs.Walk("/", "/mnt/dir/keep.txt", true)
	if _, errno := r3.Node.WriteAt([]byte("K"), 0); errno != 0 {
		t.Fatalf("partial write: %v", errno)
	}
	n, _ = r3.Node.ReadAt(buf, 0)
	if string(buf[:n]) != "Keep" {
		t.Fatalf("partial copy-up read %q, want Keep", buf[:n])
	}

	// Whiteout: unlink of a lower-only file hides it; lower keeps it.
	if errno := fs.Unlink("/", "/mnt/dir/gone.txt", false); errno != 0 {
		t.Fatalf("unlink lower: %v", errno)
	}
	if r, _ := fs.Walk("/", "/mnt/dir/gone.txt", true); r.Node != nil {
		t.Fatal("whiteout ineffective")
	}
	if _, errno := lower.Stat("dir/gone.txt"); errno != 0 {
		t.Fatal("lower lost the whiteout'd file")
	}
	// Readdir merge reflects the whiteout.
	dr, _ := fs.Walk("/", "/mnt/dir", true)
	for _, e := range dr.Node.List() {
		if e.Name == "gone.txt" {
			t.Fatal("whiteout'd entry still listed")
		}
	}

	// Re-created file over a whiteout is upper-only and independent.
	if errno := fs.WriteFile("/mnt/dir/gone.txt", []byte("new life"), 0o644); errno != 0 {
		t.Fatalf("recreate over whiteout: %v", errno)
	}
	r4, _ := fs.Walk("/", "/mnt/dir/gone.txt", true)
	n, _ = r4.Node.ReadAt(buf, 0)
	if string(buf[:n]) != "new life" {
		t.Fatalf("recreated read %q", buf[:n])
	}

	// Opaque dir: rmdir an (emptied) lower dir, recreate, and the old
	// lower contents must not show through.
	lower.Mkdir("od", 0o755)
	lower.Create("od/ghost.txt", 0o644)
	// Fresh overlay so /mnt2/od is visible with its lower content.
	fs2 := New(nil)
	fs2.MkdirAll("/mnt2", 0o755)
	if errno := fs2.Mount("/mnt2", NewOverlayFS(lower, nil), MountOptions{}); errno != 0 {
		t.Fatalf("mount2: %v", errno)
	}
	if errno := fs2.Unlink("/", "/mnt2/od/ghost.txt", false); errno != 0 {
		t.Fatalf("unlink ghost: %v", errno)
	}
	if errno := fs2.Unlink("/", "/mnt2/od", true); errno != 0 {
		t.Fatalf("rmdir od: %v", errno)
	}
	if _, errno := fs2.Mkdir("/", "/mnt2/od", 0o755, 0, 0); errno != 0 {
		t.Fatalf("recreate od: %v", errno)
	}
	od, _ := fs2.Walk("/", "/mnt2/od", true)
	if ents := od.Node.List(); len(ents) != 0 {
		t.Fatalf("opaque dir leaks lower contents: %v", ents)
	}
}

// TestOverlayDirRenameEXDEV: renaming a lower-visible directory
// through an overlay reports EXDEV (no redirect_dir), while an
// upper-only directory renames fine.
func TestOverlayDirRenameEXDEV(t *testing.T) {
	lower := NewMemFS(nil)
	lower.Mkdir("ldir", 0o755)
	fs := mountAt(t, NewOverlayFS(lower, nil), MountOptions{})
	if errno := fs.Rename("/", "/mnt/ldir", "/mnt/moved"); errno != linux.EXDEV {
		t.Fatalf("lower dir rename: got %v, want EXDEV", errno)
	}
	fs.MkdirAll("/mnt/udir", 0o755)
	if errno := fs.Rename("/", "/mnt/udir", "/mnt/urenamed"); errno != 0 {
		t.Fatalf("upper dir rename: %v", errno)
	}
	if r, _ := fs.Walk("/", "/mnt/urenamed", true); r.Node == nil {
		t.Fatal("upper dir rename lost the directory")
	}
}

// TestOverlayRenameOverNonEmptyDir: renaming over a directory whose
// merged view is non-empty (lower entries showing through an empty
// upper target) must fail with ENOTEMPTY, not leak the lower contents
// into the renamed directory.
func TestOverlayRenameOverNonEmptyDir(t *testing.T) {
	lower := NewMemFS(nil)
	lower.Mkdir("full", 0o755)
	lower.Create("full/child.txt", 0o644)
	fs := mountAt(t, NewOverlayFS(lower, nil), MountOptions{})
	fs.MkdirAll("/mnt/src", 0o755) // upper-only, freely renamable
	if errno := fs.Rename("/", "/mnt/src", "/mnt/full"); errno != linux.ENOTEMPTY {
		t.Fatalf("rename over merged-non-empty dir: got %v, want ENOTEMPTY", errno)
	}
	// Empty the target through the overlay; then the rename succeeds
	// and the renamed directory is empty (no lower leak-through).
	if errno := fs.Unlink("/", "/mnt/full/child.txt", false); errno != 0 {
		t.Fatalf("whiteout child: %v", errno)
	}
	if errno := fs.Rename("/", "/mnt/src", "/mnt/full"); errno != 0 {
		t.Fatalf("rename over emptied dir: %v", errno)
	}
	r, _ := fs.Walk("/", "/mnt/full", true)
	if r.Node == nil || !r.Node.IsDir() {
		t.Fatal("renamed dir missing")
	}
	if ents := r.Node.List(); len(ents) != 0 {
		t.Fatalf("lower contents leaked into renamed dir: %v", ents)
	}
}

// TestHostFSPassthrough: guest-side writes appear on the host and host
// writes appear in the guest.
func TestHostFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "in"), 0o755)
	os.WriteFile(filepath.Join(dir, "in", "host.txt"), []byte("from host"), 0o644)
	h, err := NewHostFS(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	fs := mountAt(t, h, MountOptions{})

	r, errno := fs.Walk("/", "/mnt/in/host.txt", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("walk host file: %v", errno)
	}
	buf := make([]byte, 16)
	n, _ := r.Node.ReadAt(buf, 0)
	if string(buf[:n]) != "from host" {
		t.Fatalf("read %q", buf[:n])
	}
	if errno := fs.WriteFile("/mnt/out.txt", []byte("from guest"), 0o644); errno != 0 {
		t.Fatalf("guest write: %v", errno)
	}
	got, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil || string(got) != "from guest" {
		t.Fatalf("host sees %q, %v", got, err)
	}
	// Rename on the host-backed mount moves the real file.
	if errno := fs.Rename("/", "/mnt/out.txt", "/mnt/in/renamed.txt"); errno != 0 {
		t.Fatalf("rename: %v", errno)
	}
	if _, err := os.Stat(filepath.Join(dir, "in", "renamed.txt")); err != nil {
		t.Fatalf("host missing renamed file: %v", err)
	}
	// Host-side mutation is visible through the mount (no stale cache).
	os.WriteFile(filepath.Join(dir, "external.txt"), []byte("late"), 0o644)
	if r, _ := fs.Walk("/", "/mnt/external.txt", true); r.Node == nil {
		t.Fatal("host-created file invisible")
	}
}

// TestMountPointSemantics: mountpoint crossing, ".." escaping a mount
// root, EBUSY on unlinking a mountpoint, and statfs magic.
func TestMountPointSemantics(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/a/mnt", 0o755)
	fs.WriteFile("/a/sibling.txt", []byte("s"), 0o644)
	mem := NewMemFS(nil)
	if errno := fs.Mount("/a/mnt", mem, MountOptions{}); errno != 0 {
		t.Fatalf("mount: %v", errno)
	}
	fs.WriteFile("/a/mnt/inside.txt", []byte("i"), 0o644)
	// ".." from inside the mount escapes to the mountpoint's parent.
	r, errno := fs.Walk("/", "/a/mnt/../sibling.txt", true)
	if errno != 0 || r.Node == nil {
		t.Fatalf("dotdot across mount root: %v", errno)
	}
	// The covered directory is busy.
	if errno := fs.Unlink("/", "/a/mnt", true); errno != linux.EBUSY {
		t.Fatalf("rmdir mountpoint: got %v, want EBUSY", errno)
	}
	if errno := fs.Rename("/", "/a/mnt", "/a/elsewhere"); errno != linux.EBUSY {
		t.Fatalf("rename mountpoint: got %v, want EBUSY", errno)
	}
	// Mounting the same tree twice is refused.
	fs.MkdirAll("/b", 0o755)
	if errno := fs.Mount("/b", mem, MountOptions{}); errno != linux.EBUSY {
		t.Fatalf("double mount of one MemFS: got %v, want EBUSY", errno)
	}
	// Unmount: the in-memory content is hidden, the mountpoint returns.
	if errno := fs.Unmount("/a/mnt"); errno != 0 {
		t.Fatalf("unmount: %v", errno)
	}
	if r, _ := fs.Walk("/", "/a/mnt/inside.txt", true); r.Node != nil {
		t.Fatal("unmounted content still visible")
	}
	if r, errno := fs.Walk("/", "/a/mnt", true); errno != 0 || r.Node == nil || !r.Node.IsDir() {
		t.Fatalf("mountpoint dir gone after unmount: %v", errno)
	}
	// And it can be mounted again (fresh backend, fresh ID).
	mem2 := NewMemFS(nil)
	mem2.Create("second.txt", 0o644)
	if errno := fs.Mount("/a/mnt", mem2, MountOptions{}); errno != 0 {
		t.Fatalf("remount: %v", errno)
	}
	if r, _ := fs.Walk("/", "/a/mnt/second.txt", true); r.Node == nil {
		t.Fatal("remounted backend invisible")
	}
	if r, _ := fs.Walk("/", "/a/mnt/inside.txt", true); r.Node != nil {
		t.Fatal("stale dentry from previous mount served after remount")
	}
}

// TestNestedMountLongestPrefix: a mount inside a mount resolves by the
// deepest mountpoint on the path.
func TestNestedMountLongestPrefix(t *testing.T) {
	fs := New(nil)
	fs.MkdirAll("/top", 0o755)
	outer := NewMemFS(nil)
	if errno := fs.Mount("/top", outer, MountOptions{}); errno != 0 {
		t.Fatalf("outer mount: %v", errno)
	}
	fs.MkdirAll("/top/inner", 0o755)
	fs.WriteFile("/top/outer.txt", []byte("o"), 0o644)
	inner, err := NewHostFS(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if errno := fs.Mount("/top/inner", inner, MountOptions{}); errno != 0 {
		t.Fatalf("inner mount: %v", errno)
	}
	if errno := fs.WriteFile("/top/inner/deep.txt", []byte("d"), 0o644); errno != 0 {
		t.Fatalf("write through nested mount: %v", errno)
	}
	st, errno := fs.Walk("/", "/top/inner/deep.txt", true)
	if errno != 0 || st.Node == nil {
		t.Fatalf("walk nested: %v", errno)
	}
	ost, _ := fs.Walk("/", "/top/outer.txt", true)
	if st.Node.Stat().Dev == ost.Node.Stat().Dev {
		t.Fatal("nested mount did not get its own device id")
	}
	if _, err := os.Stat(filepath.Join(inner.Dir(), "deep.txt")); err != nil {
		t.Fatalf("nested hostfs write missing on host: %v", err)
	}
	// ".." chain from the inner mount climbs both mount roots.
	if r, errno := fs.Walk("/", "/top/inner/../outer.txt", true); errno != 0 || r.Node == nil {
		t.Fatalf("dotdot through nested mounts: %v", errno)
	}
}

// TestExecCacheStatValidation: the (size, mtime) pair that validates
// the execve module cache changes when a file is rewritten through any
// backend.
func TestExecCacheStatValidation(t *testing.T) {
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			fs := mountAt(t, bc.make(t), MountOptions{})
			if errno := fs.WriteFile("/mnt/bin", []byte("AAAA"), 0o755); errno != 0 {
				t.Fatalf("write: %v", errno)
			}
			r, _ := fs.Walk("/", "/mnt/bin", true)
			if !r.Node.StableIno() {
				t.Fatal("shipped backends must report stable inos")
			}
			st1 := r.Node.Stat()
			if errno := fs.WriteFile("/mnt/bin", []byte("BBBBBBBB"), 0o755); errno != 0 {
				t.Fatalf("rewrite: %v", errno)
			}
			r2, _ := fs.Walk("/", "/mnt/bin", true)
			if r2.Node != r.Node {
				t.Fatal("rewrite changed inode identity")
			}
			st2 := r2.Node.Stat()
			if st1.Size == st2.Size {
				t.Fatal("size did not change")
			}
			_ = fmt.Sprintf("%v", st2.Mtime) // mtime validity is backend-dependent (zero clock on memfs)
		})
	}
}

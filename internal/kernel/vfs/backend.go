package vfs

import (
	"errors"
	"io/fs"
	"syscall"

	"gowali/internal/linux"
)

// Backend is a mountable filesystem implementation. The VFS core owns
// path resolution, the dentry cache and the inode table; a backend only
// answers operations on mount-relative paths. Paths handed to a backend
// are already normalized: slash-separated, no leading slash, and no "."
// or ".." components ("" names the backend root). The VFS resolves
// symlinks itself — a backend reports S_IFLNK nodes and is never asked
// to walk through one.
//
// Three backends ship: MemFS (the in-memory tree, the default root
// filesystem), HostFS (passthrough to a host directory) and OverlayFS
// (copy-up writes over a read-only lower). Implementations must be safe
// for concurrent use; the VFS serializes namespace mutations per parent
// directory but issues reads concurrently.
type Backend interface {
	// Caps reports immutable backend capabilities.
	Caps() Caps
	// Lookup resolves name within the directory dir ("" = root),
	// returning ENOENT when absent.
	Lookup(dir, name string) (NodeInfo, linux.Errno)
	// Stat describes the node at rel ("" = root).
	Stat(rel string) (NodeInfo, linux.Errno)
	// ReadDir lists a directory. Entry Ino values are advisory; the VFS
	// substitutes its per-mount inode numbers.
	ReadDir(rel string) ([]DirEntry, linux.Errno)
	// ReadAt reads file content (0 at EOF, like Inode.ReadAt).
	ReadAt(rel string, b []byte, off int64) (int, linux.Errno)
	// WriteAt writes file content, growing the file as needed.
	WriteAt(rel string, b []byte, off int64) (int, linux.Errno)
	// Truncate resizes a regular file.
	Truncate(rel string, size int64) linux.Errno
	// Create makes a new regular file (exclusive: EEXIST if present).
	Create(rel string, perm uint32) linux.Errno
	// Mkdir makes a new directory.
	Mkdir(rel string, perm uint32) linux.Errno
	// Unlink removes a file (dir=false) or empty directory (dir=true,
	// ENOTEMPTY otherwise).
	Unlink(rel string, dir bool) linux.Errno
	// Rename moves oldRel to newRel within the backend, replacing a
	// compatible target. Cross-mount renames never reach a backend —
	// the VFS returns EXDEV first.
	Rename(oldRel, newRel string) linux.Errno
}

// SymlinkBackend is implemented by backends that support symbolic
// links. Backends without it reject symlink creation with EPERM and
// present any existing links as unreadable (empty target).
type SymlinkBackend interface {
	Symlink(rel, target string) linux.Errno
	Readlink(rel string) (string, linux.Errno)
}

// Caps describes backend capabilities. The VFS consults them when
// mounting (ReadOnly forces a read-only mount) and when deciding what
// it may cache against an inode's identity.
type Caps struct {
	// ReadOnly backends reject every mutation; the mount is forced
	// read-only and the VFS reports EROFS before calling in.
	ReadOnly bool
	// StableInos means a path keeps the same identity across lookups
	// while mounted, so per-inode caches (the execve module cache,
	// open file handles) remain valid between walks.
	StableInos bool
	// Magic is the statfs f_type this backend reports (0 = TMPFS).
	Magic int64
}

// NodeInfo describes one backend node, the backend half of a stat.
type NodeInfo struct {
	Mode  uint32 // type (S_IFMT) and permission bits
	Size  int64
	Nlink uint32
	Atime linux.Timespec
	Mtime linux.Timespec
	Ctime linux.Timespec
}

// Filesystem magic numbers reported through statfs (Linux values).
const (
	MagicTmpfs   = 0x01021994
	MagicOverlay = 0x794c7630
	MagicHostfs  = 0x958458f6 // HUGETLBFS repurposed: "host-backed"
)

// errnoFromHost maps a host filesystem error onto the simulated
// kernel's errno space.
func errnoFromHost(err error) linux.Errno {
	if err == nil {
		return 0
	}
	var sys syscall.Errno
	if errors.As(err, &sys) {
		switch sys {
		case syscall.ENOENT:
			return linux.ENOENT
		case syscall.EEXIST:
			return linux.EEXIST
		case syscall.EACCES, syscall.EPERM:
			return linux.EACCES
		case syscall.ENOTDIR:
			return linux.ENOTDIR
		case syscall.EISDIR:
			return linux.EISDIR
		case syscall.ENOTEMPTY:
			return linux.ENOTEMPTY
		case syscall.EXDEV:
			return linux.EXDEV
		case syscall.EROFS:
			return linux.EROFS
		case syscall.ENOSPC:
			return linux.ENOSPC
		case syscall.EINVAL:
			return linux.EINVAL
		case syscall.ELOOP:
			return linux.ELOOP
		case syscall.ENAMETOOLONG:
			return linux.ENAMETOOLONG
		}
	}
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return linux.ENOENT
	case errors.Is(err, fs.ErrExist):
		return linux.EEXIST
	case errors.Is(err, fs.ErrPermission):
		return linux.EACCES
	}
	return linux.EIO
}

// infoFromMode builds the minimal NodeInfo a readdir-driven node
// materialization needs (type bits only; Stat refreshes the rest).
func infoFromMode(mode uint32) NodeInfo { return NodeInfo{Mode: mode} }

// modeFromDT converts a DT_* directory-entry type to S_IFMT bits
// (0 when unknown — the caller falls back to a Lookup).
func modeFromDT(dt byte) uint32 {
	switch dt {
	case linux.DT_DIR:
		return linux.S_IFDIR | 0o755
	case linux.DT_REG:
		return linux.S_IFREG | 0o644
	case linux.DT_LNK:
		return linux.S_IFLNK | 0o777
	case linux.DT_CHR:
		return linux.S_IFCHR | 0o666
	case linux.DT_FIFO:
		return linux.S_IFIFO | 0o644
	case linux.DT_SOCK:
		return linux.S_IFSOCK | 0o644
	}
	return 0
}

package vfs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gowali/internal/linux"
)

// TestMountUnmountUnderConcurrentWalks races mount/unmount cycles at
// one mountpoint against walkers, readers and creators traversing it.
// It is primarily a -race exercise of the mount-crossing walk and the
// per-mount dentry cache; the correctness assertion is that after the
// final remount, lookups resolve in the *current* backend — a stale
// dentry from any earlier mount generation must never be served.
func TestMountUnmountUnderConcurrentWalks(t *testing.T) {
	fs := New(nil)
	if fs.MkdirAll("/mnt", 0o755) == nil {
		t.Fatal("mkdir /mnt")
	}
	fs.WriteFile("/under.txt", []byte("under"), 0o644)

	cycles := 60
	if testing.Short() {
		cycles = 15
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				switch (g + i) % 4 {
				case 0:
					// Walks may land in any mount generation (or the bare
					// mountpoint); they must never error in unexpected ways
					// or return a node from a dead generation's tree that
					// a fresh walk of the same path contradicts.
					fs.Walk("/", "/mnt/probe.txt", true)
				case 1:
					if r, errno := fs.Walk("/", "/mnt", true); errno == 0 && r.Node != nil {
						r.Node.List()
					}
				case 2:
					fs.Create("/", fmt.Sprintf("/mnt/w%d.txt", g), linux.S_IFREG|0o644, 0, 0, false)
				case 3:
					fs.Walk("/", "/mnt/../under.txt", true)
				}
			}
		}(g)
	}

	for c := 0; c < cycles; c++ {
		mem := NewMemFS(nil)
		mem.Create("probe.txt", 0o644)
		mem.WriteAt("probe.txt", []byte(fmt.Sprintf("gen%d", c)), 0)
		if errno := fs.Mount("/mnt", mem, MountOptions{}); errno != 0 {
			t.Fatalf("mount cycle %d: %v", c, errno)
		}
		// Give walkers a chance to populate the dcache for this
		// generation, then tear it down.
		for i := 0; i < 50; i++ {
			fs.Walk("/", "/mnt/probe.txt", true)
		}
		if errno := fs.Unmount("/mnt"); errno != 0 {
			t.Fatalf("unmount cycle %d: %v", c, errno)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Final generation: a fresh backend with distinct content. Every
	// lookup must see it — not any of the 60 dead generations.
	final := NewMemFS(nil)
	final.Create("probe.txt", 0o644)
	final.WriteAt("probe.txt", []byte("final"), 0)
	if errno := fs.Mount("/mnt", final, MountOptions{}); errno != 0 {
		t.Fatalf("final mount: %v", errno)
	}
	for i := 0; i < 100; i++ {
		r, errno := fs.Walk("/", "/mnt/probe.txt", true)
		if errno != 0 || r.Node == nil {
			t.Fatalf("final walk: %v", errno)
		}
		buf := make([]byte, 8)
		n, _ := r.Node.ReadAt(buf, 0)
		if string(buf[:n]) != "final" {
			t.Fatalf("stale dentry served: %q", buf[:n])
		}
		if r.Node.Stat().Dev == 1 {
			t.Fatal("mounted file reports the root mount's device")
		}
	}
	// The dead generations' dcache entries were swept.
	total := 0
	for i := range fs.dcache {
		fs.dcache[i].mu.RLock()
		for k := range fs.dcache[i].m {
			if k.mnt != 1 && k.mnt != final.mnt.Load().ID {
				total++
			}
		}
		fs.dcache[i].mu.RUnlock()
	}
	if total != 0 {
		t.Fatalf("%d dcache entries from dead mounts survived the sweep", total)
	}
}

// TestOverlayCopyUpNoStaleDentry: copy-up must not disturb dentry or
// inode identity — concurrent readers of a path being copied up keep
// resolving to the same inode and never observe a missing file.
func TestOverlayCopyUpNoStaleDentry(t *testing.T) {
	lower := NewMemFS(nil)
	lower.Create("f.txt", 0o644)
	lower.WriteAt("f.txt", []byte("low"), 0)
	fs := New(nil)
	fs.MkdirAll("/ov", 0o755)
	if errno := fs.Mount("/ov", NewOverlayFS(lower, nil), MountOptions{}); errno != 0 {
		t.Fatalf("mount: %v", errno)
	}
	r0, _ := fs.Walk("/", "/ov/f.txt", true)
	if r0.Node == nil {
		t.Fatal("pre-copy-up walk failed")
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				r, errno := fs.Walk("/", "/ov/f.txt", true)
				if errno != 0 || r.Node == nil {
					t.Error("file vanished during copy-up")
					return
				}
				if r.Node != r0.Node {
					t.Error("copy-up changed dentry identity")
					return
				}
				buf := make([]byte, 8)
				r.Node.ReadAt(buf, 0)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, errno := r0.Node.WriteAt([]byte(fmt.Sprintf("w%03d", i)), 0); errno != 0 {
			t.Fatalf("write %d: %v", i, errno)
		}
	}
	stop.Store(true)
	wg.Wait()
	buf := make([]byte, 8)
	n, _ := r0.Node.ReadAt(buf, 0)
	if string(buf[:n]) != "w049" {
		t.Fatalf("final content %q", buf[:n])
	}
}

package vfs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gowali/internal/linux"
)

// Mount is one entry of the mount table: a backend grafted over a
// directory. Two shapes exist:
//
//   - native (mem != nil): a MemFS tree grafted directly — the walk
//     descends its inodes exactly as it does the root tree;
//   - proxy (mem == nil): any other Backend. The mount materializes one
//     proxy inode per path it has seen (the nodes table), so open files
//     and the execve module cache observe a stable identity per file,
//     and delegates all data and namespace operations to the backend.
//
// Longest-prefix resolution is emergent: the walk crosses into a mount
// at its mountpoint inode, so the deepest mount on a path wins without
// consulting the table.
type Mount struct {
	// ID keys the dentry cache and is the st_dev guests observe; it is
	// unique per FS for the FS's lifetime (never reused), which is what
	// makes post-unmount dcache entries dead rather than dangerous.
	ID       uint64
	fs       *FS
	path     string // absolute mountpoint path ("/" for the root mount)
	point    *Inode // covered mountpoint inode (nil for the root mount)
	backend  Backend
	mem      *MemFS // non-nil for natively grafted MemFS mounts
	root     *Inode
	readonly bool
	dead     atomic.Bool

	// Proxy-inode table (proxy mounts only): mount-relative path →
	// inode. nodeMu nests strictly inside inode locks.
	nodeMu  sync.Mutex
	nodes   map[string]*Inode
	nextIno atomic.Uint64
}

// MountOptions configures FS.Mount.
type MountOptions struct {
	// ReadOnly rejects every mutation through this mount with EROFS
	// (forced on when the backend itself is read-only).
	ReadOnly bool
}

// MountInfo is one public row of the mount table.
type MountInfo struct {
	Path     string
	ReadOnly bool
	Backend  Backend
}

// joinRel appends a name to a mount-relative directory path.
func joinRel(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

// normalizeAbs collapses "." and ".." lexically into an absolute path.
func normalizeAbs(path string) string {
	var stack []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, p)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// Mount grafts backend over the directory at path. The directory must
// exist; mounting over "/" is rejected (the root mount is fixed at
// boot), and at most one mount may cover a given inode (mounting onto
// an already-mounted path stacks over the previous mount's root).
func (fs *FS) Mount(path string, b Backend, opts MountOptions) linux.Errno {
	if b == nil {
		return linux.EINVAL
	}
	r, errno := fs.Walk("/", path, true)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	if !r.Node.IsDir() {
		return linux.ENOTDIR
	}
	if r.Node == fs.Root {
		return linux.EBUSY
	}
	m := &Mount{
		ID:       fs.nextMnt.Add(1),
		fs:       fs,
		path:     normalizeAbs(path),
		point:    r.Node,
		backend:  b,
		readonly: opts.ReadOnly || b.Caps().ReadOnly,
	}
	if mem, ok := b.(*MemFS); ok {
		if !mem.mnt.CompareAndSwap(nil, m) {
			return linux.EBUSY // this tree is already mounted somewhere
		}
		m.mem = mem
		m.root = mem.root
	} else {
		info, errno := b.Stat("")
		if errno != 0 {
			return errno
		}
		if info.Mode&linux.S_IFMT != linux.S_IFDIR {
			return linux.ENOTDIR
		}
		root := &Inode{Ino: m.nextIno.Add(1), typ: linux.S_IFDIR, mnt: m, mode: info.Mode, nlink: 2}
		root.parent = root
		m.nodes = map[string]*Inode{"": root}
		m.root = root
	}
	if !r.Node.mounted.CompareAndSwap(nil, m) {
		if m.mem != nil {
			m.mem.mnt.CompareAndSwap(m, nil)
		}
		return linux.EBUSY
	}
	fs.mntMu.Lock()
	fs.mounts = append(fs.mounts, m)
	fs.mntMu.Unlock()
	return 0
}

// Unmount detaches the (topmost) mount at path. In-flight walks and
// open files referencing the old mount keep working against its
// backend (lazy unmount, as MNT_DETACH behaves); fresh walks see the
// underlying directory. All of the mount's dentry-cache entries are
// swept out; its mount ID is never reused, so even a racing cache
// insert cannot make a new mount at the same path serve stale entries.
func (fs *FS) Unmount(path string) linux.Errno {
	npath := normalizeAbs(path)
	fs.mntMu.Lock()
	var m *Mount
	for i := len(fs.mounts) - 1; i >= 0; i-- {
		if fs.mounts[i].path == npath && fs.mounts[i].point != nil {
			m = fs.mounts[i]
			fs.mounts = append(fs.mounts[:i], fs.mounts[i+1:]...)
			break
		}
	}
	fs.mntMu.Unlock()
	if m == nil {
		return linux.EINVAL
	}
	m.point.mounted.CompareAndSwap(m, nil)
	m.dead.Store(true)
	if m.mem != nil {
		m.mem.mnt.CompareAndSwap(m, nil)
	}
	fs.dcacheDropMount(m.ID)
	return 0
}

// Mounts lists the mount table, shortest path first.
func (fs *FS) Mounts() []MountInfo {
	fs.mntMu.Lock()
	defer fs.mntMu.Unlock()
	out := make([]MountInfo, 0, len(fs.mounts))
	for _, m := range fs.mounts {
		out = append(out, MountInfo{Path: m.path, ReadOnly: m.readonly, Backend: m.backend})
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].Path) < len(out[j].Path) })
	return out
}

// MagicFor reports the statfs f_type for the filesystem holding n.
func (fs *FS) MagicFor(n *Inode) int64 {
	if m := n.mount(); m != nil && m.backend != nil {
		if mg := m.backend.Caps().Magic; mg != 0 {
			return mg
		}
	}
	return MagicTmpfs
}

// --- proxy-inode management ---

// getNode returns the stable proxy inode for rel, materializing it on
// first sight. Caller holds (at least) the parent's read lock, which
// is what makes the dcache insert it performs next coherent.
func (m *Mount) getNode(parent *Inode, rel string, info NodeInfo) *Inode {
	m.nodeMu.Lock()
	defer m.nodeMu.Unlock()
	if n := m.nodes[rel]; n != nil && n.typ == info.Mode&linux.S_IFMT {
		return n
	}
	n := &Inode{
		Ino:   m.nextIno.Add(1),
		typ:   info.Mode & linux.S_IFMT,
		mnt:   m,
		brel:  rel,
		mode:  info.Mode,
		nlink: 1,
	}
	if info.Mode&linux.S_IFMT == linux.S_IFDIR {
		n.nlink = 2
		n.parent = parent
	}
	m.nodes[rel] = n
	return n
}

// detachLocked removes rel (and, for directories, its whole subtree)
// from the proxy table, returning the victims. Caller holds nodeMu and
// MUST NOT touch the victims' inode locks until nodeMu is released —
// nodeMu nests strictly inside inode locks (lookupProxy holds a
// directory lock when it takes nodeMu in getNode), so acquiring an
// inode lock under nodeMu would invert the order and deadlock against
// a concurrent walk.
func (m *Mount) detachLocked(rel string) []*Inode {
	var victims []*Inode
	if n := m.nodes[rel]; n != nil {
		victims = append(victims, n)
		delete(m.nodes, rel)
	}
	prefix := rel + "/"
	for k, n := range m.nodes {
		if strings.HasPrefix(k, prefix) {
			victims = append(victims, n)
			delete(m.nodes, k)
		}
	}
	return victims
}

// killNodes marks detached proxies dead (nlink 0) so racing creates
// observe the removal. Runs with nodeMu released; the caller's parent
// write lock keeps the parent → child order of the memfs paths.
func killNodes(victims []*Inode) {
	for _, n := range victims {
		n.mu.Lock()
		n.nlink = 0
		n.mu.Unlock()
	}
}

// dropNode removes rel (and, for directories, its whole subtree) from
// the proxy table, marking the victims dead so racing creates observe
// nlink == 0. Caller holds the parent's write lock.
func (m *Mount) dropNode(rel string) {
	m.nodeMu.Lock()
	victims := m.detachLocked(rel)
	m.nodeMu.Unlock()
	killNodes(victims)
}

// renameNodes re-keys oldRel's proxy subtree under newRel after a
// successful backend rename, so open files follow the file to its new
// path. A displaced target subtree dies first. Caller holds both
// parents' write locks and FS.renameMu (which serializes re-keying);
// the map is updated under nodeMu alone, then the inodes' brel fields
// under their own locks — see detachLocked for why the two phases
// must not overlap.
func (m *Mount) renameNodes(oldRel, newRel string, newParent *Inode) {
	type move struct {
		key string
		n   *Inode
	}
	m.nodeMu.Lock()
	victims := m.detachLocked(newRel)
	var moved []move
	for k, n := range m.nodes {
		if k == oldRel || strings.HasPrefix(k, oldRel+"/") {
			moved = append(moved, move{newRel + k[len(oldRel):], n})
			delete(m.nodes, k)
		}
	}
	for _, mv := range moved {
		m.nodes[mv.key] = mv.n
	}
	m.nodeMu.Unlock()
	killNodes(victims)
	for _, mv := range moved {
		mv.n.mu.Lock()
		mv.n.brel = mv.key
		if mv.key == newRel && mv.n.parent != nil {
			mv.n.parent = newParent
		}
		mv.n.mu.Unlock()
	}
}

// lookupProxy resolves one component in a proxy directory, mirroring
// the native lookup's coherence protocol: backend consult plus dcache
// insert under the directory's read lock, mutations under its write
// lock, so an invalidated entry can never be re-inserted stale.
func (m *Mount) lookupProxy(fs *FS, dir *Inode, name string) (*Inode, bool) {
	dir.mu.RLock()
	defer dir.mu.RUnlock()
	if dir.nlink == 0 {
		return nil, false // directory was removed
	}
	info, errno := m.backend.Lookup(dir.brel, name)
	if errno != 0 {
		return nil, false
	}
	n := m.getNode(dir, joinRel(dir.brel, name), info)
	fs.dcachePut(m.ID, dir.Ino, name, n)
	return n, true
}

// listProxy implements Inode.List for proxy directories, substituting
// per-mount inode numbers for the backend's advisory ones.
func (m *Mount) listProxy(n *Inode) []DirEntry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ents, errno := m.backend.ReadDir(n.brel)
	if errno != 0 {
		return nil
	}
	out := make([]DirEntry, 0, len(ents))
	for _, e := range ents {
		mode := modeFromDT(e.Type)
		if mode == 0 {
			info, errno := m.backend.Lookup(n.brel, e.Name)
			if errno != 0 {
				continue
			}
			mode = info.Mode
		}
		child := m.getNode(n, joinRel(n.brel, e.Name), infoFromMode(mode))
		out = append(out, DirEntry{Name: e.Name, Ino: child.Ino, Type: dtype(child.typ)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// createProxy implements Create/Mkdir under a proxy parent.
func (m *Mount) createProxy(fs *FS, dir *Inode, name string, mode uint32, excl bool) (*Inode, linux.Errno) {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.nlink == 0 {
		return nil, linux.ENOENT // parent was removed between walk and lock
	}
	rel := joinRel(dir.brel, name)
	if info, errno := m.backend.Lookup(dir.brel, name); errno == 0 {
		// Lost a create race (or the walk's miss was stale): apply
		// open(O_CREAT) semantics to the entry that got there first.
		if excl {
			return nil, linux.EEXIST
		}
		n := m.getNode(dir, rel, info)
		if n.IsDir() && mode&linux.S_IFMT == linux.S_IFREG {
			return nil, linux.EISDIR
		}
		return n, 0
	}
	var errno linux.Errno
	switch mode & linux.S_IFMT {
	case linux.S_IFREG:
		errno = m.backend.Create(rel, mode&0o7777)
	case linux.S_IFDIR:
		errno = m.backend.Mkdir(rel, mode&0o7777)
	default:
		return nil, linux.EPERM // devices/FIFOs/sockets stay on memfs
	}
	if errno != 0 {
		return nil, errno
	}
	info, errno := m.backend.Lookup(dir.brel, name)
	if errno != 0 {
		return nil, linux.EIO
	}
	return m.getNode(dir, rel, info), 0
}

// symlinkProxy implements Symlink under a proxy parent.
func (m *Mount) symlinkProxy(dir *Inode, name, target string) linux.Errno {
	sb, ok := m.backend.(SymlinkBackend)
	if !ok {
		return linux.EPERM
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	if dir.nlink == 0 {
		return linux.ENOENT
	}
	return sb.Symlink(joinRel(dir.brel, name), target)
}

// unlinkProxy implements Unlink/Rmdir under a proxy parent. Type and
// mount-root checks ran in FS.Unlink; the backend is authoritative for
// existence and emptiness.
func (m *Mount) unlinkProxy(fs *FS, dir *Inode, name string, dirOp bool) linux.Errno {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	rel := joinRel(dir.brel, name)
	if errno := m.backend.Unlink(rel, dirOp); errno != 0 {
		return errno
	}
	fs.dcacheDelete(m.ID, dir.Ino, name)
	m.dropNode(rel)
	return 0
}

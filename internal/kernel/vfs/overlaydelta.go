package vfs

import (
	"fmt"
	"sort"

	"gowali/internal/kernel/snap"
	"gowali/internal/linux"
)

// Snapshot support: an overlay's upper layer IS the guest's filesystem
// delta — everything it created or modified over the shared lower image —
// so checkpointing the filesystem reduces to serializing the upper layer
// plus the whiteout/opacity masks, and restoring to replaying them into a
// fresh overlay over the same lower backend.

// Delta captures the upper layer and deletion masks. The walk reads
// through the upper backend directly, so lower-layer content (shared,
// immutable, re-mountable by the restorer) is never duplicated into the
// image.
func (o *OverlayFS) Delta() (*snap.OverlayImage, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	img := &snap.OverlayImage{}
	for p := range o.wh {
		img.Whiteouts = append(img.Whiteouts, p)
	}
	for p := range o.opaque {
		img.Opaque = append(img.Opaque, p)
	}
	sort.Strings(img.Whiteouts)
	sort.Strings(img.Opaque)
	if err := o.deltaWalk(img, ""); err != nil {
		return nil, err
	}
	return img, nil
}

// deltaWalk appends rel's upper subtree (parents before children, so
// replay can create in order). Caller holds o.mu.
func (o *OverlayFS) deltaWalk(img *snap.OverlayImage, rel string) error {
	ents, errno := o.upper.ReadDir(rel)
	if errno != 0 {
		if errno == linux.ENOENT && rel == "" {
			return nil // pristine upper layer
		}
		return fmt.Errorf("overlay delta: readdir %q: errno %d", rel, errno)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		p := joinRel(rel, e.Name)
		info, errno := o.upper.Stat(p)
		if errno != 0 {
			return fmt.Errorf("overlay delta: stat %q: errno %d", p, errno)
		}
		f := snap.OverlayFile{Path: p, Mode: info.Mode & 0o7777}
		switch info.Mode & linux.S_IFMT {
		case linux.S_IFDIR:
			f.IsDir = true
			img.Files = append(img.Files, f)
			if err := o.deltaWalk(img, p); err != nil {
				return err
			}
			continue
		case linux.S_IFLNK:
			sb, ok := o.upper.(SymlinkBackend)
			if !ok {
				return fmt.Errorf("overlay delta: %q: symlink on non-symlink backend", p)
			}
			t, errno := sb.Readlink(p)
			if errno != 0 {
				return fmt.Errorf("overlay delta: readlink %q: errno %d", p, errno)
			}
			f.Symlink = t
		case linux.S_IFREG:
			f.Data = make([]byte, info.Size)
			if info.Size > 0 {
				n, errno := o.upper.ReadAt(p, f.Data, 0)
				if errno != 0 {
					return fmt.Errorf("overlay delta: read %q: errno %d", p, errno)
				}
				f.Data = f.Data[:n]
			}
		default:
			return fmt.Errorf("overlay delta: %q: unsupported type %#o", p, info.Mode&linux.S_IFMT)
		}
		img.Files = append(img.Files, f)
	}
	return nil
}

// ApplyDelta replays a captured delta into this overlay's (fresh) upper
// layer and installs the deletion masks. The overlay must be stacked over
// the same lower image the delta was captured against.
func (o *OverlayFS) ApplyDelta(img *snap.OverlayImage) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, f := range img.Files {
		switch {
		case f.IsDir:
			if errno := o.upper.Mkdir(f.Path, f.Mode); errno != 0 && errno != linux.EEXIST {
				return fmt.Errorf("overlay restore: mkdir %q: errno %d", f.Path, errno)
			}
		case f.Symlink != "":
			sb, ok := o.upper.(SymlinkBackend)
			if !ok {
				return fmt.Errorf("overlay restore: %q: upper layer lacks symlinks", f.Path)
			}
			if errno := sb.Symlink(f.Path, f.Symlink); errno != 0 {
				return fmt.Errorf("overlay restore: symlink %q: errno %d", f.Path, errno)
			}
		default:
			if errno := o.upper.Create(f.Path, f.Mode); errno != 0 && errno != linux.EEXIST {
				return fmt.Errorf("overlay restore: create %q: errno %d", f.Path, errno)
			}
			if len(f.Data) > 0 {
				if _, errno := o.upper.WriteAt(f.Path, f.Data, 0); errno != 0 {
					return fmt.Errorf("overlay restore: write %q: errno %d", f.Path, errno)
				}
			}
		}
	}
	for _, p := range img.Whiteouts {
		o.wh[p] = true
	}
	for _, p := range img.Opaque {
		o.opaque[p] = true
	}
	return nil
}

package vfs

import (
	"sort"
	"strings"
	"sync"

	"gowali/internal/linux"
)

// OverlayFS stacks a writable upper backend over a read-only view of a
// lower backend: reads come from the upper layer when present and fall
// through to the lower one otherwise; the first write to a lower file
// copies it up in full, and deletions of lower entries are recorded as
// whiteouts. The lower backend is never mutated. This is the classic
// container idiom: many guests sharing one read-only application image
// (a hostfs mount, say) with private scratch state on top.
//
// Renaming a directory that is visible in the lower layer fails with
// EXDEV (the kernel overlayfs does the same without redirect_dir);
// file renames copy up first. Upper-only directories rename freely.
type OverlayFS struct {
	lower Backend
	upper Backend

	// mu guards the whiteout/opaque sets and serializes copy-up, so
	// two concurrent first-writes to one lower file produce a single
	// coherent upper copy.
	mu     sync.Mutex
	wh     map[string]bool // deleted-from-lower paths
	opaque map[string]bool // upper dirs that hide lower contents
}

// NewOverlayFS stacks upper (writable; a fresh MemFS when nil) over
// lower.
func NewOverlayFS(lower, upper Backend) *OverlayFS {
	if upper == nil {
		upper = NewMemFS(nil)
	}
	return &OverlayFS{lower: lower, upper: upper, wh: map[string]bool{}, opaque: map[string]bool{}}
}

// Caps implements Backend.
func (o *OverlayFS) Caps() Caps {
	return Caps{StableInos: true, Magic: MagicOverlay}
}

// hiddenLocked reports whether rel's lower entry is masked by a
// whiteout or an opaque ancestor. Caller holds o.mu.
func (o *OverlayFS) hiddenLocked(rel string) bool {
	if o.wh[rel] {
		return true
	}
	for cur := rel; cur != ""; {
		dir, _ := splitRel(cur)
		if o.wh[dir] || o.opaque[dir] {
			return true
		}
		cur = dir
	}
	return false
}

func (o *OverlayFS) hidden(rel string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hiddenLocked(rel)
}

// statLayer resolves rel to (info, fromUpper).
func (o *OverlayFS) statLayer(rel string) (NodeInfo, bool, linux.Errno) {
	if info, errno := o.upper.Stat(rel); errno == 0 {
		return info, true, 0
	} else if errno != linux.ENOENT {
		return NodeInfo{}, false, errno
	}
	if o.hidden(rel) {
		return NodeInfo{}, false, linux.ENOENT
	}
	info, errno := o.lower.Stat(rel)
	return info, false, errno
}

// Lookup implements Backend.
func (o *OverlayFS) Lookup(dir, name string) (NodeInfo, linux.Errno) {
	info, _, errno := o.statLayer(joinRel(dir, name))
	return info, errno
}

// Stat implements Backend.
func (o *OverlayFS) Stat(rel string) (NodeInfo, linux.Errno) {
	info, _, errno := o.statLayer(rel)
	return info, errno
}

// ReadDir implements Backend: the merged listing, upper entries
// shadowing lower ones of the same name.
func (o *OverlayFS) ReadDir(rel string) ([]DirEntry, linux.Errno) {
	info, fromUpper, errno := o.statLayer(rel)
	if errno != 0 {
		return nil, errno
	}
	if info.Mode&linux.S_IFMT != linux.S_IFDIR {
		return nil, linux.ENOTDIR
	}
	seen := map[string]DirEntry{}
	var names []string
	add := func(ents []DirEntry) {
		for _, e := range ents {
			if _, ok := seen[e.Name]; !ok {
				seen[e.Name] = e
				names = append(names, e.Name)
			}
		}
	}
	if upper, errno := o.upper.ReadDir(rel); errno == 0 {
		add(upper)
	} else if fromUpper && errno != linux.ENOENT {
		return nil, errno
	}
	o.mu.Lock()
	dirHidden := o.hiddenLocked(rel) || o.opaque[rel]
	o.mu.Unlock()
	if !dirHidden {
		if lower, errno := o.lower.ReadDir(rel); errno == 0 {
			o.mu.Lock()
			for _, e := range lower {
				if !o.wh[joinRel(rel, e.Name)] {
					if _, ok := seen[e.Name]; !ok {
						seen[e.Name] = e
						names = append(names, e.Name)
					}
				}
			}
			o.mu.Unlock()
		}
	}
	sort.Strings(names)
	out := make([]DirEntry, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out, 0
}

// ensureUpperDirLocked materializes rel's directory chain in the upper
// layer (copying directory identity, not contents). Caller holds o.mu.
func (o *OverlayFS) ensureUpperDirLocked(rel string) linux.Errno {
	if rel == "" {
		return 0
	}
	if info, errno := o.upper.Stat(rel); errno == 0 {
		if info.Mode&linux.S_IFMT != linux.S_IFDIR {
			return linux.ENOTDIR
		}
		return 0
	}
	dir, _ := splitRel(rel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	perm := uint32(0o755)
	if info, errno := o.lower.Stat(rel); errno == 0 {
		perm = info.Mode & 0o7777
	}
	if errno := o.upper.Mkdir(rel, perm); errno != 0 && errno != linux.EEXIST {
		return errno
	}
	return 0
}

// copyUpLocked copies a lower file into the upper layer byte for byte.
// Caller holds o.mu (serializing concurrent first-writes).
func (o *OverlayFS) copyUpLocked(rel string) linux.Errno {
	if _, errno := o.upper.Stat(rel); errno == 0 {
		return 0 // already up
	}
	if o.hiddenLocked(rel) {
		return linux.ENOENT
	}
	info, errno := o.lower.Stat(rel)
	if errno != 0 {
		return errno
	}
	switch info.Mode & linux.S_IFMT {
	case linux.S_IFDIR:
		return o.ensureUpperDirLocked(rel)
	case linux.S_IFLNK:
		lsb, ok1 := o.lower.(SymlinkBackend)
		usb, ok2 := o.upper.(SymlinkBackend)
		if !ok1 || !ok2 {
			return linux.EPERM
		}
		t, errno := lsb.Readlink(rel)
		if errno != 0 {
			return errno
		}
		dir, _ := splitRel(rel)
		if errno := o.ensureUpperDirLocked(dir); errno != 0 {
			return errno
		}
		return usb.Symlink(rel, t)
	case linux.S_IFREG:
	default:
		return linux.EPERM
	}
	dir, _ := splitRel(rel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	if errno := o.upper.Create(rel, info.Mode&0o7777); errno != 0 && errno != linux.EEXIST {
		return errno
	}
	buf := make([]byte, 64*1024)
	var off int64
	for {
		n, errno := o.lower.ReadAt(rel, buf, off)
		if errno != 0 {
			return errno
		}
		if n == 0 {
			break
		}
		if _, errno := o.upper.WriteAt(rel, buf[:n], off); errno != 0 {
			return errno
		}
		off += int64(n)
	}
	return 0
}

// ReadAt implements Backend.
func (o *OverlayFS) ReadAt(rel string, b []byte, off int64) (int, linux.Errno) {
	if n, errno := o.upper.ReadAt(rel, b, off); errno != linux.ENOENT {
		return n, errno
	}
	if o.hidden(rel) {
		return 0, linux.ENOENT
	}
	return o.lower.ReadAt(rel, b, off)
}

// WriteAt implements Backend (copy-up on first write to a lower file).
func (o *OverlayFS) WriteAt(rel string, b []byte, off int64) (int, linux.Errno) {
	o.mu.Lock()
	errno := o.copyUpLocked(rel)
	o.mu.Unlock()
	if errno != 0 {
		return 0, errno
	}
	return o.upper.WriteAt(rel, b, off)
}

// Truncate implements Backend (copy-up, then truncate the copy).
func (o *OverlayFS) Truncate(rel string, size int64) linux.Errno {
	o.mu.Lock()
	errno := o.copyUpLocked(rel)
	o.mu.Unlock()
	if errno != 0 {
		return errno
	}
	return o.upper.Truncate(rel, size)
}

// Create implements Backend.
func (o *OverlayFS) Create(rel string, perm uint32) linux.Errno {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.hiddenLocked(rel) {
		if _, errno := o.lower.Stat(rel); errno == 0 {
			return linux.EEXIST
		}
	}
	dir, _ := splitRel(rel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	if errno := o.upper.Create(rel, perm); errno != 0 {
		return errno
	}
	delete(o.wh, rel)
	return 0
}

// Mkdir implements Backend. Re-creating a directory over a whiteout
// marks it opaque: the lower directory's old contents stay hidden.
func (o *OverlayFS) Mkdir(rel string, perm uint32) linux.Errno {
	o.mu.Lock()
	defer o.mu.Unlock()
	lowerHidden := o.hiddenLocked(rel)
	if !lowerHidden {
		if _, errno := o.lower.Stat(rel); errno == 0 {
			return linux.EEXIST
		}
	}
	dir, _ := splitRel(rel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	if errno := o.upper.Mkdir(rel, perm); errno != 0 {
		return errno
	}
	if o.wh[rel] {
		delete(o.wh, rel)
		o.opaque[rel] = true
	}
	return 0
}

// Symlink implements SymlinkBackend when the upper layer does.
func (o *OverlayFS) Symlink(rel, target string) linux.Errno {
	usb, ok := o.upper.(SymlinkBackend)
	if !ok {
		return linux.EPERM
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.hiddenLocked(rel) {
		if _, errno := o.lower.Stat(rel); errno == 0 {
			return linux.EEXIST
		}
	}
	dir, _ := splitRel(rel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	if errno := usb.Symlink(rel, target); errno != 0 {
		return errno
	}
	delete(o.wh, rel)
	return 0
}

// Readlink implements SymlinkBackend.
func (o *OverlayFS) Readlink(rel string) (string, linux.Errno) {
	if usb, ok := o.upper.(SymlinkBackend); ok {
		if t, errno := usb.Readlink(rel); errno != linux.ENOENT {
			return t, errno
		}
	}
	if o.hidden(rel) {
		return "", linux.ENOENT
	}
	lsb, ok := o.lower.(SymlinkBackend)
	if !ok {
		return "", linux.EINVAL
	}
	return lsb.Readlink(rel)
}

// mergedEmptyLocked reports whether the merged view of directory rel
// is empty: no upper entries and no lower entries that survive the
// whiteout/opacity masks. Caller holds o.mu.
func (o *OverlayFS) mergedEmptyLocked(rel string) (bool, linux.Errno) {
	if upper, errno := o.upper.ReadDir(rel); errno == 0 {
		if len(upper) > 0 {
			return false, 0
		}
	} else if errno != linux.ENOENT {
		return false, errno
	}
	if o.hiddenLocked(rel) || o.opaque[rel] {
		return true, 0
	}
	lower, errno := o.lower.ReadDir(rel)
	if errno != 0 {
		return true, 0 // no lower dir: upper-only and empty
	}
	for _, e := range lower {
		if !o.wh[joinRel(rel, e.Name)] {
			return false, 0
		}
	}
	return true, 0
}

// Unlink implements Backend: remove the upper entry if present, and
// whiteout the lower one if visible.
func (o *OverlayFS) Unlink(rel string, dir bool) linux.Errno {
	o.mu.Lock()
	defer o.mu.Unlock()
	info, fromUpper, errno := o.statLayerLocked(rel)
	if errno != 0 {
		return errno
	}
	isDir := info.Mode&linux.S_IFMT == linux.S_IFDIR
	if dir && !isDir {
		return linux.ENOTDIR
	}
	if !dir && isDir {
		return linux.EISDIR
	}
	if dir {
		// Merged emptiness: the upper dir may be empty while lower
		// entries still show through (or vice versa). Checked under
		// o.mu so a concurrent create cannot slip in between the
		// check and the whiteout.
		empty, errno := o.mergedEmptyLocked(rel)
		if errno != 0 {
			return errno
		}
		if !empty {
			return linux.ENOTEMPTY
		}
	}
	if fromUpper {
		if errno := o.upper.Unlink(rel, dir); errno != 0 {
			return errno
		}
	}
	delete(o.opaque, rel)
	lowerVisible := false
	if !o.hiddenLocked(rel) {
		if _, errno := o.lower.Stat(rel); errno == 0 {
			lowerVisible = true
		}
	}
	if lowerVisible {
		o.wh[rel] = true
	}
	return 0
}

func (o *OverlayFS) statLayerLocked(rel string) (NodeInfo, bool, linux.Errno) {
	if info, errno := o.upper.Stat(rel); errno == 0 {
		return info, true, 0
	} else if errno != linux.ENOENT {
		return NodeInfo{}, false, errno
	}
	if o.hiddenLocked(rel) {
		return NodeInfo{}, false, linux.ENOENT
	}
	info, errno := o.lower.Stat(rel)
	return info, false, errno
}

// Rename implements Backend. Files copy up and move in the upper
// layer; directories move only when the lower layer has no visible
// entry at the old path (EXDEV otherwise, like overlayfs without
// redirect_dir — callers fall back to copy semantics).
func (o *OverlayFS) Rename(oldRel, newRel string) linux.Errno {
	o.mu.Lock()
	defer o.mu.Unlock()
	info, _, errno := o.statLayerLocked(oldRel)
	if errno != 0 {
		return errno
	}
	isDir := info.Mode&linux.S_IFMT == linux.S_IFDIR
	lowerOld := false
	if !o.hiddenLocked(oldRel) {
		if _, errno := o.lower.Stat(oldRel); errno == 0 {
			lowerOld = true
		}
	}
	if isDir {
		if lowerOld {
			return linux.EXDEV // lower-visible directory: no redirects
		}
	} else if lowerOld {
		if errno := o.copyUpLocked(oldRel); errno != 0 {
			return errno
		}
	}
	// Target checks: type compatibility and, for directories, merged
	// emptiness (rename(2) only replaces empty directories — the upper
	// backend would only see its own layer's entries, so the merged
	// view must be checked here). A conflicting upper target is then
	// replaced by the backend rename; a lower-only target ends up
	// shadowed by the new upper entry.
	if tinfo, _, errno := o.statLayerLocked(newRel); errno == 0 {
		tIsDir := tinfo.Mode&linux.S_IFMT == linux.S_IFDIR
		if tIsDir != isDir {
			if tIsDir {
				return linux.EISDIR
			}
			return linux.ENOTDIR
		}
		if tIsDir {
			empty, errno := o.mergedEmptyLocked(newRel)
			if errno != 0 {
				return errno
			}
			if !empty {
				return linux.ENOTEMPTY
			}
		}
	}
	dir, _ := splitRel(newRel)
	if errno := o.ensureUpperDirLocked(dir); errno != 0 {
		return errno
	}
	if errno := o.upper.Rename(oldRel, newRel); errno != 0 {
		return errno
	}
	// Re-key whiteouts/opacity under the moved subtree and mask the
	// vacated lower path.
	for _, set := range []map[string]bool{o.wh, o.opaque} {
		for k := range set {
			if k == oldRel || strings.HasPrefix(k, oldRel+"/") {
				delete(set, k)
				set[newRel+k[len(oldRel):]] = true
			}
		}
	}
	delete(o.wh, newRel)
	if lowerOld {
		o.wh[oldRel] = true
	}
	return 0
}

package vfs

import (
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gowali/internal/linux"
)

// HostFS is a passthrough backend rooted at a host directory: guests
// mounted on it read and write real host files. Containment relies on
// os.Root — every open, create, stat and remove resolves inside the
// root directory, with symlink escapes rejected by the host kernel.
// Paths reaching a backend are VFS-normalized (no "..", no absolute
// components), so the only escape vector left is a hostile symlink
// inside the tree, which os.Root refuses to follow outward.
//
// Host symlinks are surfaced as symlinks; their targets are resolved
// by the VFS walk inside the guest namespace (like a chroot, an
// absolute target points at the guest root, not the host's). Creating
// new symlinks or hard links through hostfs is not supported (EPERM).
type HostFS struct {
	dir  string
	root *os.Root
	ro   bool

	// Open-handle cache: opening the host file per ReadAt would put a
	// host open() on every guest pread64. Bounded FIFO; entries are
	// dropped on unlink/truncate-to-rename hazards by rel key.
	hmu     sync.Mutex
	handles map[string]*hostHandle
	horder  []string
}

// hostHandle is one cached open host file. rw records whether it was
// opened read-write: a read may be served by a read-only fallback
// (host file not writable by us), but a write through such a handle
// must re-open or fail with the open-time errno, never EBADF.
type hostHandle struct {
	f  *os.File
	rw bool
}

// hostHandleCap bounds the open-handle cache.
const hostHandleCap = 64

// NewHostFS opens a host directory as a mountable backend. With
// readOnly set, every mutation fails with EROFS (and the mount is
// forced read-only).
func NewHostFS(dir string, readOnly bool) (*HostFS, error) {
	root, err := os.OpenRoot(dir)
	if err != nil {
		return nil, err
	}
	return &HostFS{dir: dir, root: root, ro: readOnly, handles: map[string]*hostHandle{}}, nil
}

// Dir returns the host directory this backend is rooted at.
func (h *HostFS) Dir() string { return h.dir }

// Close releases the root handle and every cached file handle.
func (h *HostFS) Close() error {
	h.hmu.Lock()
	for _, hh := range h.handles {
		hh.f.Close()
	}
	h.handles = map[string]*hostHandle{}
	h.horder = nil
	h.hmu.Unlock()
	return h.root.Close()
}

// Caps implements Backend.
func (h *HostFS) Caps() Caps {
	return Caps{ReadOnly: h.ro, StableInos: true, Magic: MagicHostfs}
}

// hostRel maps a mount-relative path onto an os.Root operand.
func hostRel(rel string) string {
	if rel == "" {
		return "."
	}
	return rel
}

func infoFromFileInfo(fi iofs.FileInfo) NodeInfo {
	mode := uint32(fi.Mode().Perm())
	switch {
	case fi.Mode().IsDir():
		mode |= linux.S_IFDIR
	case fi.Mode()&iofs.ModeSymlink != 0:
		mode |= linux.S_IFLNK
	case fi.Mode()&iofs.ModeNamedPipe != 0:
		mode |= linux.S_IFIFO
	case fi.Mode()&iofs.ModeSocket != 0:
		mode |= linux.S_IFSOCK
	case fi.Mode()&iofs.ModeCharDevice != 0:
		mode |= linux.S_IFCHR
	default:
		mode |= linux.S_IFREG
	}
	mt := linux.TimespecFromNanos(fi.ModTime().UnixNano())
	return NodeInfo{
		Mode:  mode,
		Size:  fi.Size(),
		Nlink: 1,
		Atime: mt,
		Mtime: mt,
		Ctime: mt,
	}
}

// Lookup implements Backend.
func (h *HostFS) Lookup(dir, name string) (NodeInfo, linux.Errno) {
	fi, err := h.root.Lstat(hostRel(joinRel(dir, name)))
	if err != nil {
		return NodeInfo{}, errnoFromHost(err)
	}
	return infoFromFileInfo(fi), 0
}

// Stat implements Backend.
func (h *HostFS) Stat(rel string) (NodeInfo, linux.Errno) {
	fi, err := h.root.Lstat(hostRel(rel))
	if err != nil {
		return NodeInfo{}, errnoFromHost(err)
	}
	return infoFromFileInfo(fi), 0
}

// ReadDir implements Backend.
func (h *HostFS) ReadDir(rel string) ([]DirEntry, linux.Errno) {
	f, err := h.root.Open(hostRel(rel))
	if err != nil {
		return nil, errnoFromHost(err)
	}
	defer f.Close()
	ents, err := f.ReadDir(-1)
	if err != nil {
		return nil, errnoFromHost(err)
	}
	out := make([]DirEntry, 0, len(ents))
	for _, e := range ents {
		var dt byte = linux.DT_REG
		switch {
		case e.IsDir():
			dt = linux.DT_DIR
		case e.Type()&iofs.ModeSymlink != 0:
			dt = linux.DT_LNK
		case e.Type()&iofs.ModeNamedPipe != 0:
			dt = linux.DT_FIFO
		case e.Type()&iofs.ModeSocket != 0:
			dt = linux.DT_SOCK
		case e.Type()&iofs.ModeCharDevice != 0:
			dt = linux.DT_CHR
		}
		out = append(out, DirEntry{Name: e.Name(), Type: dt})
	}
	return out, 0
}

// handle returns a (cached) open host file for rel. Files are opened
// read-write on writable backends so one handle serves both paths;
// when the host file itself is not writable by us, reads fall back to
// a read-only handle, and a write asking for that handle surfaces the
// read-write open's errno (EACCES) instead of silently failing later.
func (h *HostFS) handle(rel string, write bool) (*os.File, linux.Errno) {
	if write && h.ro {
		return nil, linux.EROFS
	}
	h.hmu.Lock()
	if hh, ok := h.handles[rel]; ok && (hh.rw || !write) {
		f := hh.f
		h.hmu.Unlock()
		return f, 0
	}
	h.hmu.Unlock()
	flags := os.O_RDWR
	if h.ro {
		flags = os.O_RDONLY
	}
	f, err := h.root.OpenFile(hostRel(rel), flags, 0)
	rw := err == nil && !h.ro
	if err != nil && !h.ro {
		if write {
			return nil, errnoFromHost(err)
		}
		// Host file not writable by us: fall back to read-only.
		f, err = h.root.OpenFile(hostRel(rel), os.O_RDONLY, 0)
	}
	if err != nil {
		return nil, errnoFromHost(err)
	}
	h.hmu.Lock()
	if prev, ok := h.handles[rel]; ok {
		if prev.rw || !rw {
			pf := prev.f
			h.hmu.Unlock()
			f.Close()
			return pf, 0
		}
		// Upgrade a cached read-only handle to the fresh read-write one.
		prev.f.Close()
		delete(h.handles, rel)
		h.horder = dropKey(h.horder, rel)
	}
	if len(h.horder) >= hostHandleCap {
		victim := h.horder[0]
		h.horder = h.horder[1:]
		if vh, ok := h.handles[victim]; ok {
			delete(h.handles, victim)
			vh.f.Close()
		}
	}
	h.handles[rel] = &hostHandle{f: f, rw: rw}
	h.horder = append(h.horder, rel)
	h.hmu.Unlock()
	return f, 0
}

func dropKey(order []string, key string) []string {
	keep := order[:0]
	for _, k := range order {
		if k != key {
			keep = append(keep, k)
		}
	}
	return keep
}

// dropHandles closes cached handles under rel (itself or its subtree).
func (h *HostFS) dropHandles(rel string) {
	h.hmu.Lock()
	for k, hh := range h.handles {
		if k == rel || strings.HasPrefix(k, rel+"/") {
			hh.f.Close()
			delete(h.handles, k)
		}
	}
	keep := h.horder[:0]
	for _, k := range h.horder {
		if _, ok := h.handles[k]; ok {
			keep = append(keep, k)
		}
	}
	h.horder = keep
	h.hmu.Unlock()
}

// ReadAt implements Backend.
func (h *HostFS) ReadAt(rel string, b []byte, off int64) (int, linux.Errno) {
	f, errno := h.handle(rel, false)
	if errno != 0 {
		return 0, errno
	}
	n, err := f.ReadAt(b, off)
	if err != nil && err != io.EOF {
		return n, errnoFromHost(err)
	}
	return n, 0
}

// WriteAt implements Backend.
func (h *HostFS) WriteAt(rel string, b []byte, off int64) (int, linux.Errno) {
	f, errno := h.handle(rel, true)
	if errno != 0 {
		return 0, errno
	}
	n, err := f.WriteAt(b, off)
	if err != nil {
		return n, errnoFromHost(err)
	}
	return n, 0
}

// Truncate implements Backend.
func (h *HostFS) Truncate(rel string, size int64) linux.Errno {
	f, errno := h.handle(rel, true)
	if errno != 0 {
		return errno
	}
	return errnoFromHost(f.Truncate(size))
}

// Create implements Backend.
func (h *HostFS) Create(rel string, perm uint32) linux.Errno {
	if h.ro {
		return linux.EROFS
	}
	f, err := h.root.OpenFile(rel, os.O_CREATE|os.O_EXCL|os.O_RDWR, os.FileMode(perm&0o777))
	if err != nil {
		return errnoFromHost(err)
	}
	f.Close()
	return 0
}

// Mkdir implements Backend.
func (h *HostFS) Mkdir(rel string, perm uint32) linux.Errno {
	if h.ro {
		return linux.EROFS
	}
	return errnoFromHost(h.root.Mkdir(rel, os.FileMode(perm&0o777)))
}

// Unlink implements Backend.
func (h *HostFS) Unlink(rel string, dir bool) linux.Errno {
	if h.ro {
		return linux.EROFS
	}
	// Root.Remove deletes files and empty directories alike; the VFS
	// has already type-checked against the proxy inode.
	if err := h.root.Remove(rel); err != nil {
		return errnoFromHost(err)
	}
	h.dropHandles(rel)
	return 0
}

// Rename implements Backend. Go 1.24's os.Root has no Rename, so the
// paths are joined under the root explicitly; both operands are
// VFS-normalized (no dot-dots), and the source is verified to resolve
// inside the root first, which keeps the join inside the tree short of
// a concurrently planted symlink on the host side.
func (h *HostFS) Rename(oldRel, newRel string) linux.Errno {
	if h.ro {
		return linux.EROFS
	}
	if _, err := h.root.Lstat(hostRel(oldRel)); err != nil {
		return errnoFromHost(err)
	}
	err := os.Rename(
		filepath.Join(h.dir, filepath.FromSlash(oldRel)),
		filepath.Join(h.dir, filepath.FromSlash(newRel)),
	)
	if err != nil {
		return errnoFromHost(err)
	}
	h.dropHandles(oldRel)
	h.dropHandles(newRel)
	return 0
}

// Readlink implements the read half of SymlinkBackend; creating links
// through hostfs is rejected (os.Root has no symlink support yet).
func (h *HostFS) Readlink(rel string) (string, linux.Errno) {
	if _, err := h.root.Lstat(hostRel(rel)); err != nil {
		return "", errnoFromHost(err)
	}
	t, err := os.Readlink(filepath.Join(h.dir, filepath.FromSlash(rel)))
	if err != nil {
		return "", errnoFromHost(err)
	}
	return filepath.ToSlash(t), 0
}

// Symlink implements SymlinkBackend (unsupported: EPERM).
func (h *HostFS) Symlink(rel, target string) linux.Errno { return linux.EPERM }

package vfs

import (
	"sync"

	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// PipeCapacity is the default pipe buffer size, matching Linux's 64 KiB.
const PipeCapacity = 64 * 1024

// Pipe is a byte stream with POSIX pipe semantics: reads block while the
// buffer is empty and writers remain; writes block while full and readers
// remain; EOF when all writers close; EPIPE when all readers close.
//
// Besides the internal condition (which serves blocking reads and
// writes), every state change wakes the pipe's wait queue, so pollers
// blocked on either end get event-driven readiness instead of sampling.
type Pipe struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	cap     int
	readers int
	writers int
	q       waitq.Queue
}

// NewPipe returns an empty pipe with the default capacity and no
// registered ends; callers account ends with AddReader/AddWriter.
func NewPipe() *Pipe {
	p := &Pipe{cap: PipeCapacity}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// AddReader registers a read end.
func (p *Pipe) AddReader() {
	p.mu.Lock()
	p.readers++
	p.mu.Unlock()
	p.cond.Broadcast()
	p.q.Wake()
}

// AddWriter registers a write end.
func (p *Pipe) AddWriter() {
	p.mu.Lock()
	p.writers++
	p.mu.Unlock()
	p.cond.Broadcast()
	p.q.Wake()
}

// CloseReader drops a read end.
func (p *Pipe) CloseReader() {
	p.mu.Lock()
	p.readers--
	p.mu.Unlock()
	p.cond.Broadcast()
	p.q.Wake()
}

// CloseWriter drops a write end.
func (p *Pipe) CloseWriter() {
	p.mu.Lock()
	p.writers--
	p.mu.Unlock()
	p.cond.Broadcast()
	p.q.Wake()
}

// Read implements pipe read semantics. A zero return with errno 0 is EOF.
func (p *Pipe) Read(b []byte, nonblock bool) (int, linux.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		if p.writers == 0 {
			return 0, 0 // EOF
		}
		if nonblock {
			return 0, linux.EAGAIN
		}
		p.cond.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	p.cond.Broadcast()
	p.q.Wake()
	return n, 0
}

// Write implements pipe write semantics. Writing with no readers returns
// EPIPE (the kernel layer also raises SIGPIPE).
func (p *Pipe) Write(b []byte, nonblock bool) (int, linux.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if p.readers == 0 {
			if total > 0 {
				return total, 0
			}
			return 0, linux.EPIPE
		}
		space := p.cap - len(p.buf)
		if space == 0 {
			if nonblock {
				if total > 0 {
					return total, 0
				}
				return 0, linux.EAGAIN
			}
			p.cond.Wait()
			continue
		}
		n := len(b)
		if n > space {
			n = space
		}
		p.buf = append(p.buf, b[:n]...)
		b = b[n:]
		total += n
		p.cond.Broadcast()
		p.q.Wake()
	}
	return total, 0
}

// Poll returns readiness bits for the given end.
func (p *Pipe) Poll(readEnd bool) int16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ev int16
	if readEnd {
		if len(p.buf) > 0 {
			ev |= linux.POLLIN
		}
		if p.writers == 0 {
			ev |= linux.POLLHUP
		}
	} else {
		if len(p.buf) < p.cap {
			ev |= linux.POLLOUT
		}
		if p.readers == 0 {
			ev |= linux.POLLERR
		}
	}
	return ev
}

// Queue returns the pipe's wait queue, woken on every state change
// (data written, space freed, an end closed). Pollers of either end
// arm on it for event-driven readiness.
func (p *Pipe) Queue() *waitq.Queue { return &p.q }

// Buffered returns the number of bytes waiting (FIONREAD).
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

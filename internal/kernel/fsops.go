package kernel

import (
	"fmt"
	"strings"

	"gowali/internal/kernel/vfs"
	"gowali/internal/linux"
)

// Filesystem syscalls, expressed as methods on Process so path resolution
// uses the caller's cwd, umask and credentials.

// resolveBase determines the directory path a *at() call resolves against.
func (p *Process) resolveBase(dirfd int32, path string) (string, linux.Errno) {
	if strings.HasPrefix(path, "/") || dirfd == linux.AT_FDCWD {
		return p.substSelf(p.Cwd()), 0
	}
	f, errno := p.FDs.Get(dirfd)
	if errno != 0 {
		return "", errno
	}
	pf, ok := f.(pather)
	if !ok {
		return "", linux.ENOTDIR
	}
	return pf.Path(), 0
}

// substSelf rewrites /proc/self to the caller's pid directory.
func (p *Process) substSelf(path string) string {
	if path == "/proc/self" || strings.HasPrefix(path, "/proc/self/") {
		return fmt.Sprintf("/proc/%d%s", p.PID, path[len("/proc/self"):])
	}
	return path
}

// OpenAt implements openat(dirfd, path, flags, mode).
func (p *Process) OpenAt(dirfd int32, path string, flags int32, mode uint32) (int32, linux.Errno) {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return -1, errno
	}
	path = p.substSelf(path)
	fs := p.K.FS
	follow := flags&linux.O_NOFOLLOW == 0

	var ino *vfs.Inode
	if flags&linux.O_CREAT != 0 {
		p.fs.mu.Lock()
		umask := p.fs.umask
		p.fs.mu.Unlock()
		uid, euid, _, egid := p.Creds()
		_ = uid
		n, errno := fs.Create(base, path, linux.S_IFREG|mode&^umask&0o7777, euid, egid, flags&linux.O_EXCL != 0)
		if errno != 0 {
			return -1, errno
		}
		ino = n
	} else {
		r, errno := fs.Walk(base, path, follow)
		if errno != 0 {
			return -1, errno
		}
		if r.Node == nil {
			return -1, linux.ENOENT
		}
		if !follow && r.Node.IsSymlink() {
			return -1, linux.ELOOP
		}
		ino = r.Node
	}

	if flags&linux.O_DIRECTORY != 0 && !ino.IsDir() {
		return -1, linux.ENOTDIR
	}
	if ino.IsDir() && flags&linux.O_ACCMODE != linux.O_RDONLY {
		return -1, linux.EISDIR
	}
	if ino.ReadOnly() && (flags&linux.O_ACCMODE != linux.O_RDONLY || flags&linux.O_TRUNC != 0) {
		return -1, linux.EROFS // write access on a read-only mount
	}

	fullPath := path
	if !strings.HasPrefix(path, "/") {
		fullPath = strings.TrimSuffix(base, "/") + "/" + path
	}

	var file File
	switch ino.Type() {
	case linux.S_IFCHR:
		if ino.Device() == nil {
			// A device node with no driver attached (e.g. a host
			// device file seen through a hostfs mount).
			return -1, linux.ENXIO
		}
		file = newDevFile(ino, fullPath, flags)
	case linux.S_IFIFO:
		// Opening a FIFO: read end or write end by access mode.
		pipe := ino.Pipe()
		file = newPipeFile(p.K, pipe, flags&linux.O_ACCMODE == linux.O_RDONLY, flags)
	default:
		if flags&linux.O_TRUNC != 0 && !ino.IsDir() && flags&linux.O_ACCMODE != linux.O_RDONLY {
			ino.Truncate(0)
		}
		file = newRegFile(ino, fullPath, flags)
	}
	return p.FDs.Alloc(file, flags&linux.O_CLOEXEC != 0, 0)
}

// Open is open(2) (x86-64 legacy entry emulated via openat).
func (p *Process) Open(path string, flags int32, mode uint32) (int32, linux.Errno) {
	return p.OpenAt(linux.AT_FDCWD, path, flags, mode)
}

// Read implements read(2).
func (p *Process) Read(fd int32, b []byte) (int, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return 0, errno
	}
	// Files with kernel-driven blocking (pipes, sockets, the console)
	// park through the signal-aware blockOn loop, so a blocked read is
	// interruptible and releases its scheduler slot. Everything else
	// (regular files, always-ready devices) never blocks.
	if nf, ok := f.(nbIO); ok && nf.blocking() {
		return p.readBlocking(nf, b)
	}
	return f.Read(b)
}

// Write implements write(2). Writing to a read-closed pipe raises SIGPIPE
// in addition to EPIPE, as the kernel does.
func (p *Process) Write(fd int32, b []byte) (int, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return 0, errno
	}
	var n int
	if nf, ok := f.(nbIO); ok && nf.blocking() {
		n, errno = p.writeBlocking(nf, b)
	} else {
		n, errno = f.Write(b)
	}
	if errno == linux.EPIPE {
		p.PostSignal(linux.SIGPIPE)
	}
	return n, errno
}

// Pread64 implements pread64.
func (p *Process) Pread64(fd int32, b []byte, off int64) (int, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return 0, errno
	}
	return f.Pread(b, off)
}

// Pwrite64 implements pwrite64.
func (p *Process) Pwrite64(fd int32, b []byte, off int64) (int, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return 0, errno
	}
	return f.Pwrite(b, off)
}

// Lseek implements lseek.
func (p *Process) Lseek(fd int32, off int64, whence int32) (int64, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return -1, errno
	}
	return f.Lseek(off, whence)
}

// Close implements close.
func (p *Process) Close(fd int32) linux.Errno { return p.FDs.Close(fd) }

// Dup implements dup.
func (p *Process) Dup(fd int32) (int32, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return -1, errno
	}
	return p.FDs.Alloc(f, false, 0)
}

// Dup3 implements dup3 (and dup2 when flags==0 with oldfd!=newfd checks in
// the WALI layer).
func (p *Process) Dup3(oldfd, newfd int32, flags int32) (int32, linux.Errno) {
	if oldfd == newfd {
		return -1, linux.EINVAL
	}
	f, errno := p.FDs.Get(oldfd)
	if errno != 0 {
		return -1, errno
	}
	if errno := p.FDs.Set(newfd, f, flags&linux.O_CLOEXEC != 0); errno != 0 {
		return -1, errno
	}
	return newfd, 0
}

// Fcntl implements the F_DUPFD/F_GETFD/F_SETFD/F_GETFL/F_SETFL subset.
func (p *Process) Fcntl(fd int32, cmd int32, arg int32) (int32, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return -1, errno
	}
	switch cmd {
	case linux.F_DUPFD:
		return p.FDs.Alloc(f, false, arg)
	case linux.F_DUPFD_CLOEXEC:
		return p.FDs.Alloc(f, true, arg)
	case linux.F_GETFD:
		ce, _ := p.FDs.Cloexec(fd)
		if ce {
			return linux.FD_CLOEXEC, 0
		}
		return 0, 0
	case linux.F_SETFD:
		p.FDs.SetCloexec(fd, arg&linux.FD_CLOEXEC != 0)
		return 0, 0
	case linux.F_GETFL:
		return f.Flags(), 0
	case linux.F_SETFL:
		f.SetFlags(arg)
		return 0, 0
	}
	return -1, linux.EINVAL
}

// Ioctl implements ioctl.
func (p *Process) Ioctl(fd int32, cmd uint32, arg []byte) (int32, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return -1, errno
	}
	if cmd == linux.FIONBIO {
		if len(arg) >= 4 && (arg[0]|arg[1]|arg[2]|arg[3]) != 0 {
			f.SetFlags(f.Flags() | linux.O_NONBLOCK)
		} else {
			f.SetFlags(f.Flags() &^ linux.O_NONBLOCK)
		}
		return 0, 0
	}
	return f.Ioctl(cmd, arg)
}

// Fstat implements fstat.
func (p *Process) Fstat(fd int32) (linux.Stat, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return linux.Stat{}, errno
	}
	return f.Stat()
}

// StatAt implements newfstatat/stat/lstat.
func (p *Process) StatAt(dirfd int32, path string, follow bool) (linux.Stat, linux.Errno) {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return linux.Stat{}, errno
	}
	r, errno := p.K.FS.Walk(base, p.substSelf(path), follow)
	if errno != 0 {
		return linux.Stat{}, errno
	}
	if r.Node == nil {
		return linux.Stat{}, linux.ENOENT
	}
	return r.Node.Stat(), 0
}

// Access implements faccessat (permission model: owner bits only).
func (p *Process) Access(dirfd int32, path string, mode int32) linux.Errno {
	st, errno := p.StatAt(dirfd, path, true)
	if errno != 0 {
		return errno
	}
	if mode == linux.F_OK {
		return 0
	}
	_, euid, _, _ := p.Creds()
	if euid == 0 {
		return 0
	}
	perm := st.Mode & 0o777
	var need uint32
	if mode&linux.R_OK != 0 {
		need |= linux.S_IRUSR
	}
	if mode&linux.W_OK != 0 {
		need |= linux.S_IWUSR
	}
	if mode&linux.X_OK != 0 {
		need |= linux.S_IXUSR
	}
	if perm&need != need {
		return linux.EACCES
	}
	return 0
}

// MkdirAt implements mkdirat.
func (p *Process) MkdirAt(dirfd int32, path string, mode uint32) linux.Errno {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return errno
	}
	p.fs.mu.Lock()
	umask := p.fs.umask
	p.fs.mu.Unlock()
	_, euid, _, egid := p.Creds()
	_, errno = p.K.FS.Mkdir(base, p.substSelf(path), mode&^umask, euid, egid)
	return errno
}

// UnlinkAt implements unlinkat.
func (p *Process) UnlinkAt(dirfd int32, path string, flags int32) linux.Errno {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return errno
	}
	return p.K.FS.Unlink(base, p.substSelf(path), flags&linux.AT_REMOVEDIR != 0)
}

// RenameAt implements renameat.
func (p *Process) RenameAt(olddirfd int32, oldpath string, newdirfd int32, newpath string) linux.Errno {
	ob, errno := p.resolveBase(olddirfd, oldpath)
	if errno != 0 {
		return errno
	}
	nb, errno := p.resolveBase(newdirfd, newpath)
	if errno != 0 {
		return errno
	}
	if ob != nb && !strings.HasPrefix(oldpath, "/") && !strings.HasPrefix(newpath, "/") {
		// Different base dirs with relative paths: make both absolute.
		oldpath = strings.TrimSuffix(ob, "/") + "/" + oldpath
		newpath = strings.TrimSuffix(nb, "/") + "/" + newpath
	}
	return p.K.FS.Rename(ob, oldpath, newpath)
}

// LinkAt implements linkat.
func (p *Process) LinkAt(oldpath, newpath string) linux.Errno {
	return p.K.FS.Link(p.Cwd(), oldpath, newpath)
}

// SymlinkAt implements symlinkat.
func (p *Process) SymlinkAt(target, path string) linux.Errno {
	_, euid, _, egid := p.Creds()
	return p.K.FS.Symlink(p.Cwd(), target, path, euid, egid)
}

// ReadlinkAt implements readlinkat.
func (p *Process) ReadlinkAt(dirfd int32, path string) (string, linux.Errno) {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return "", errno
	}
	return p.K.FS.Readlink(base, p.substSelf(path))
}

// Chdir implements chdir.
func (p *Process) Chdir(path string) linux.Errno {
	r, errno := p.K.FS.Walk(p.Cwd(), p.substSelf(path), true)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	if !r.Node.IsDir() {
		return linux.ENOTDIR
	}
	abs := path
	if !strings.HasPrefix(path, "/") {
		abs = strings.TrimSuffix(p.Cwd(), "/") + "/" + path
	}
	p.fs.mu.Lock()
	p.fs.cwd = normalizePath(abs)
	p.fs.mu.Unlock()
	return 0
}

// Fchdir implements fchdir.
func (p *Process) Fchdir(fd int32) linux.Errno {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return errno
	}
	pf, ok := f.(pather)
	if !ok {
		return linux.ENOTDIR
	}
	return p.Chdir(pf.Path())
}

// normalizePath collapses "." and ".." lexically.
func normalizePath(path string) string {
	parts := strings.Split(path, "/")
	var stack []string
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, p)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// ChmodAt implements fchmodat.
func (p *Process) ChmodAt(dirfd int32, path string, mode uint32) linux.Errno {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return errno
	}
	r, errno := p.K.FS.Walk(base, p.substSelf(path), true)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	r.Node.SetMode(mode)
	return 0
}

// Fchmod implements fchmod.
func (p *Process) Fchmod(fd int32, mode uint32) linux.Errno {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return errno
	}
	rf, ok := f.(*regFile)
	if !ok {
		return linux.EINVAL
	}
	rf.Inode().SetMode(mode)
	return 0
}

// ChownAt implements fchownat.
func (p *Process) ChownAt(dirfd int32, path string, uid, gid uint32, follow bool) linux.Errno {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return errno
	}
	r, errno := p.K.FS.Walk(base, p.substSelf(path), follow)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	r.Node.SetOwner(uid, gid)
	return 0
}

// Truncate implements truncate.
func (p *Process) Truncate(path string, size int64) linux.Errno {
	r, errno := p.K.FS.Walk(p.Cwd(), p.substSelf(path), true)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	return r.Node.Truncate(size)
}

// Ftruncate implements ftruncate.
func (p *Process) Ftruncate(fd int32, size int64) linux.Errno {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return errno
	}
	return f.Truncate(size)
}

// UtimensAt implements utimensat.
func (p *Process) UtimensAt(dirfd int32, path string, atime, mtime *linux.Timespec, follow bool) linux.Errno {
	base, errno := p.resolveBase(dirfd, path)
	if errno != 0 {
		return errno
	}
	r, errno := p.K.FS.Walk(base, p.substSelf(path), follow)
	if errno != 0 {
		return errno
	}
	if r.Node == nil {
		return linux.ENOENT
	}
	r.Node.SetTimes(atime, mtime)
	return 0
}

// Pipe2 implements pipe2, returning (readfd, writefd).
func (p *Process) Pipe2(flags int32) (int32, int32, linux.Errno) {
	pipe := vfs.NewPipe()
	statusFlags := flags & linux.O_NONBLOCK
	rf := newPipeFile(p.K, pipe, true, statusFlags)
	wf := newPipeFile(p.K, pipe, false, statusFlags|linux.O_WRONLY)
	cloexec := flags&linux.O_CLOEXEC != 0
	rfd, errno := p.FDs.Alloc(rf, cloexec, 0)
	if errno != 0 {
		rf.Close()
		wf.Close()
		return -1, -1, errno
	}
	wfd, errno := p.FDs.Alloc(wf, cloexec, 0)
	if errno != 0 {
		p.FDs.Close(rfd)
		wf.Close()
		return -1, -1, errno
	}
	return rfd, wfd, 0
}

// Getdents64 fills buf with linux_dirent64 records and returns the byte
// count, or 0 at end of directory.
func (p *Process) Getdents64(fd int32, buf []byte) (int, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return 0, errno
	}
	dr, ok := f.(direader)
	if !ok {
		return 0, linux.ENOTDIR
	}
	ents, isDir := dr.ReadDir()
	if !isDir {
		return 0, linux.ENOTDIR
	}
	off := 0
	written := 0
	for _, e := range ents {
		recLen := 19 + len(e.Name) + 1 // ino(8)+off(8)+reclen(2)+type(1)+name+NUL
		recLen = (recLen + 7) &^ 7     // 8-byte align
		if off+recLen > len(buf) {
			break
		}
		putU64(buf[off:], e.Ino)
		putU64(buf[off+8:], uint64(off+recLen))
		putU16(buf[off+16:], uint16(recLen))
		buf[off+18] = e.Type
		copy(buf[off+19:], e.Name)
		buf[off+19+len(e.Name)] = 0
		off += recLen
		written++
	}
	return off, 0
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Sendfile copies up to count bytes from infd to outfd.
func (p *Process) Sendfile(outfd, infd int32, count int) (int, linux.Errno) {
	in, errno := p.FDs.Get(infd)
	if errno != 0 {
		return 0, errno
	}
	out, errno := p.FDs.Get(outfd)
	if errno != 0 {
		return 0, errno
	}
	buf := make([]byte, 64*1024)
	total := 0
	for total < count {
		n := count - total
		if n > len(buf) {
			n = len(buf)
		}
		r, errno := in.Read(buf[:n])
		if errno != 0 {
			if total > 0 {
				return total, 0
			}
			return 0, errno
		}
		if r == 0 {
			break
		}
		w, errno := out.Write(buf[:r])
		total += w
		if errno != 0 {
			return total, errno
		}
	}
	return total, 0
}

// Statfs returns synthetic filesystem statistics.
type Statfs struct {
	Type    int64
	Bsize   int64
	Blocks  uint64
	Bfree   uint64
	Bavail  uint64
	Files   uint64
	Ffree   uint64
	NameLen int64
}

// StatfsPath implements statfs.
func (p *Process) StatfsPath(path string) (Statfs, linux.Errno) {
	r, errno := p.K.FS.Walk(p.Cwd(), p.substSelf(path), true)
	if errno != 0 {
		return Statfs{}, errno
	}
	if r.Node == nil {
		return Statfs{}, linux.ENOENT
	}
	return Statfs{
		Type:    p.K.FS.MagicFor(r.Node), // per-mount f_type (tmpfs default)
		Bsize:   4096,
		Blocks:  1 << 20,
		Bfree:   1 << 19,
		Bavail:  1 << 19,
		Files:   1 << 16,
		Ffree:   1 << 15,
		NameLen: 255,
	}, 0
}

package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"gowali/internal/linux"
)

type procState int

const (
	stateRunning procState = iota
	stateZombie
	stateDead // reaped
)

// fsState is filesystem context shared by CLONE_FS threads.
type fsState struct {
	mu    sync.Mutex
	cwd   string
	umask uint32
}

// credState is the credential set shared within a thread group.
type credState struct {
	mu                   sync.Mutex
	uid, gid, euid, egid uint32
	groups               []uint32
}

func (c *credState) clone() *credState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &credState{
		uid: c.uid, gid: c.gid, euid: c.euid, egid: c.egid,
		groups: append([]uint32(nil), c.groups...),
	}
}

// threadGroup tracks live threads so process teardown happens once, and
// the member set so group-wide signals can wake exactly the blocked
// tasks of this group (no kernel-wide thundering herd).
type threadGroup struct {
	mu      sync.Mutex
	count   int
	leader  *Process
	members map[int32]*Process
}

func (g *threadGroup) add(p *Process) {
	g.mu.Lock()
	g.count++
	g.members[p.PID] = p
	g.mu.Unlock()
}

// notifyWaiters wakes every group member blocked on its wait condition
// (Wait4's EINTR re-check after a group-directed signal).
func (g *threadGroup) notifyWaiters() {
	g.mu.Lock()
	members := make([]*Process, 0, len(g.members))
	for _, t := range g.members {
		members = append(members, t)
	}
	g.mu.Unlock()
	for _, t := range members {
		t.notifyWaiters()
	}
}

// Process is one schedulable task: a conventional process or a
// CLONE_THREAD light-weight process within a thread group. In the WALI
// 1-to-1 model each Wasm process/thread maps to exactly one of these,
// running on its own goroutine.
type Process struct {
	K    *Kernel
	PID  int32
	TGID int32

	mu        sync.Mutex
	ppid      int32
	pgid, sid int32
	comm      string
	argv      []string
	envp      []string
	state     procState
	exitSt    int32
	parent    *Process
	children  map[int32]*Process

	fs    *fsState
	creds *credState
	group *threadGroup

	// FDs is the descriptor table (shared by threads).
	FDs *FDTable

	sig      *SignalState
	sigMask  uint64 // per-thread blocked set
	pendingT uint64 // per-thread directed signals (tgkill)

	// pendingTFast mirrors pendingT for the lock-free safepoint fast path
	// (see SignalState.fast). Written only with mu held.
	pendingTFast atomic.Uint64

	startMono linux.Timespec
	utimeNs   int64
	stimeNs   int64

	clearTIDAddr uint32 // set_tid_address / CLONE_CHILD_CLEARTID

	alarmTimer *time.Timer

	// Limits (prlimit64); only NOFILE is enforced.
	limits map[int32][2]uint64

	// blocker is the guest scheduler's slot hook (nil = unscheduled).
	// Set once before the task's goroutine runs; see SetBlocker.
	blocker Blocker

	// quiesce is the snapshot rendezvous flag (see quiesce.go): checked
	// at safepoints and at every interruptible blocking site.
	quiesce atomic.Bool

	// Wait condition: Wait4 blocks here instead of on a kernel-wide
	// cond, so one exit wakes only the parent (and signal posts wake
	// only their targets). waitGen is a generation counter bumped by
	// every notify; Wait4 snapshots it before scanning children, which
	// closes the lost-wakeup window without holding any broader lock.
	waitMu   sync.Mutex
	waitCond *sync.Cond
	waitGen  uint64
}

// initWait sets up the per-process wait condition.
func (p *Process) initWait() {
	p.waitCond = sync.NewCond(&p.waitMu)
}

// notifyWaiters wakes this task's Wait4 (child state change or signal).
func (p *Process) notifyWaiters() {
	p.waitMu.Lock()
	p.waitGen++
	p.waitCond.Broadcast()
	p.waitMu.Unlock()
}

// waitGenSnapshot reads the generation counter; Wait4 re-blocks only
// while it is unchanged.
func (p *Process) waitGenSnapshot() uint64 {
	p.waitMu.Lock()
	defer p.waitMu.Unlock()
	return p.waitGen
}

// NewProcess creates the initial process of a WALI application: fresh fd
// table with stdin/stdout/stderr on the console, cwd "/", default signal
// dispositions.
func (k *Kernel) NewProcess(comm string, argv, envp []string) *Process {
	pid := k.allocPID()

	p := &Process{
		K:         k,
		PID:       pid,
		TGID:      pid,
		ppid:      0,
		pgid:      pid,
		sid:       pid,
		comm:      comm,
		argv:      argv,
		envp:      envp,
		children:  make(map[int32]*Process),
		fs:        &fsState{cwd: "/", umask: 0o022},
		creds:     &credState{uid: 0, gid: 0, euid: 0, egid: 0},
		FDs:       NewFDTable(),
		sig:       newSignalState(),
		startMono: k.Monotonic(),
		limits:    map[int32][2]uint64{linux.RLIMIT_NOFILE: {DefaultNOFILE, DefaultNOFILE}},
	}
	p.group = &threadGroup{count: 1, leader: p, members: map[int32]*Process{pid: p}}
	p.initWait()

	// Standard descriptors on the console tty.
	r, errno := k.FS.Walk("/", "/dev/console", true)
	if errno == 0 && r.Node != nil {
		for fd := int32(0); fd < 3; fd++ {
			flags := int32(linux.O_RDWR)
			p.FDs.Alloc(newDevFile(r.Node, "/dev/console", flags), false, fd)
		}
	}

	k.addProc(p)
	k.registerProcSynthetic(p)
	return p
}

// Fork creates a conventional child process: copied descriptor table
// (shared descriptions), copied signal actions, fresh pending set — the
// kernel-state half of WALI's pass-through fork.
func (p *Process) Fork() *Process {
	k := p.K
	pid := k.allocPID()

	p.mu.Lock()
	c := &Process{
		K:         k,
		PID:       pid,
		TGID:      pid,
		ppid:      p.TGID,
		pgid:      p.pgid,
		sid:       p.sid,
		comm:      p.comm,
		argv:      append([]string(nil), p.argv...),
		envp:      append([]string(nil), p.envp...),
		parent:    p,
		children:  make(map[int32]*Process),
		fs:        &fsState{cwd: p.fs.cwd, umask: p.fs.umask},
		creds:     p.creds.clone(),
		FDs:       p.FDs.Clone(),
		sig:       p.sig.clone(),
		sigMask:   p.sigMask,
		startMono: k.Monotonic(),
		limits:    cloneLimits(p.limits),
	}
	p.mu.Unlock()
	c.group = &threadGroup{count: 1, leader: c, members: map[int32]*Process{pid: c}}
	c.initWait()

	p.mu.Lock()
	p.children[pid] = c
	p.mu.Unlock()

	k.addProc(c)
	k.registerProcSynthetic(c)
	return c
}

// CloneThread creates a CLONE_THREAD|CLONE_VM|CLONE_FILES|CLONE_SIGHAND
// light-weight process in p's thread group.
func (p *Process) CloneThread() *Process {
	k := p.K
	pid := k.allocPID()

	p.mu.Lock()
	t := &Process{
		K:         k,
		PID:       pid,
		TGID:      p.TGID,
		ppid:      p.ppid,
		pgid:      p.pgid,
		sid:       p.sid,
		comm:      p.comm,
		argv:      p.argv,
		envp:      p.envp,
		parent:    p.parent,
		children:  make(map[int32]*Process),
		fs:        p.fs,
		creds:     p.creds,
		FDs:       p.FDs,
		sig:       p.sig,
		sigMask:   p.sigMask,
		group:     p.group,
		startMono: k.Monotonic(),
		limits:    p.limits,
	}
	p.mu.Unlock()
	t.initWait()
	t.sig.threaded.Store(true)

	t.group.add(t)

	k.addProc(t)
	return t
}

// Exec applies execve kernel semantics: close-on-exec descriptors are
// closed, caught signals reset to default, argv/envp replaced.
func (p *Process) Exec(comm string, argv, envp []string) {
	p.FDs.CloseExec()
	p.sig.resetForExec()
	p.mu.Lock()
	p.comm = comm
	p.argv = append([]string(nil), argv...)
	p.envp = append([]string(nil), envp...)
	p.mu.Unlock()
}

// Exit terminates the task. For the last thread in a group the process
// becomes a zombie, descriptors close, SIGCHLD is posted to the parent and
// waiters wake. Earlier threads just disappear. The return value reports
// whether this was the group's final thread (the engine releases
// address-space-wide accounting only then).
func (p *Process) Exit(status int32) bool {
	k := p.K

	p.group.mu.Lock()
	p.group.count--
	last := p.group.count == 0
	leader := p.group.leader
	delete(p.group.members, p.PID)
	p.group.mu.Unlock()

	if p.alarmTimer != nil {
		p.alarmTimer.Stop()
	}

	if !last {
		// A non-final thread: remove from the table and vanish (joiners
		// rendezvous on the clear-tid futex, not on wait4).
		k.delProc(p.PID)
		return false
	}

	leader.FDs.CloseAll()

	// Reparent children to "init" (auto-reap zombies, keep runners with
	// ppid 1).
	leader.mu.Lock()
	children := leader.children
	leader.children = map[int32]*Process{}
	leader.mu.Unlock()
	for _, c := range children {
		c.mu.Lock()
		c.ppid = 1
		c.parent = nil
		zombie := c.state == stateZombie
		c.mu.Unlock()
		if zombie {
			k.reap(c)
		}
	}

	leader.mu.Lock()
	leader.state = stateZombie
	leader.exitSt = status
	parent := leader.parent
	leader.mu.Unlock()

	if p != leader {
		k.delProc(p.PID)
	}

	if parent != nil {
		// Wake the parent's wait before SIGCHLD generation: either alone
		// suffices (PostSignal also notifies), but the explicit notify
		// keeps wait4 progress independent of signal dispositions.
		parent.group.notifyWaiters()
		parent.PostSignal(linux.SIGCHLD)
	} else {
		// No parent: init reaps immediately.
		k.reap(leader)
	}
	return true
}

// reap removes a zombie from the process table.
func (k *Kernel) reap(p *Process) {
	p.mu.Lock()
	p.state = stateDead
	p.mu.Unlock()
	k.delProc(p.PID)
	k.unregisterProcSynthetic(p.PID)
}

// Wait4 implements wait4(pid, options): pid>0 waits for that child, -1 for
// any, 0 for the caller's process group, <-1 for |pid|'s group. Returns
// the reaped pid and its raw wait status.
func (p *Process) Wait4(pid int32, options int32) (int32, int32, linux.Rusage, linux.Errno) {
	k := p.K
	for {
		// Snapshot the wait generation first: any child state change or
		// signal between the scan below and the block at the bottom bumps
		// it, so the re-check always runs (no lost wakeups, no global
		// lock held across the scan).
		gen := p.waitGenSnapshot()

		var match *Process
		anyChild := false
		p.mu.Lock()
		for _, c := range p.children {
			c.mu.Lock()
			ok := false
			switch {
			case pid > 0:
				ok = c.PID == pid
			case pid == -1:
				ok = true
			case pid == 0:
				ok = c.pgid == p.pgid
			default:
				ok = c.pgid == -pid
			}
			if ok {
				anyChild = true
				if c.state == stateZombie {
					match = c
				}
			}
			c.mu.Unlock()
			if match != nil {
				break
			}
		}
		p.mu.Unlock()

		if match != nil {
			// Claim the zombie by transitioning it to dead under its own
			// lock; a concurrent waiter that lost the claim rescans.
			match.mu.Lock()
			if match.state != stateZombie {
				match.mu.Unlock()
				continue
			}
			match.state = stateDead
			status := match.exitSt
			ru := linux.Rusage{
				Utime: linux.TimespecFromNanos(match.utimeNs),
				Stime: linux.TimespecFromNanos(match.stimeNs),
			}
			match.mu.Unlock()
			p.mu.Lock()
			delete(p.children, match.PID)
			p.mu.Unlock()
			k.reap(match)
			// Re-notify siblings that lost the claim race so their rescan
			// sees the now-empty entry instead of re-blocking.
			p.group.notifyWaiters()
			return match.PID, status, ru, 0
		}
		if !anyChild {
			return -1, 0, linux.Rusage{}, linux.ECHILD
		}
		if options&linux.WNOHANG != 0 {
			return 0, 0, linux.Rusage{}, 0
		}
		// Interruptible by pending unblocked signals (EINTR) so job
		// control works.
		if p.HasDeliverableSignal() || p.QuiesceRequested() {
			return -1, 0, linux.Rusage{}, linux.EINTR
		}
		// Block until this task is notified: its children change state or
		// a signal targets it — not until any process anywhere exits.
		// Release the run slot only if actually about to sleep: the
		// generation snapshot makes the gen==gen check safe to repeat
		// after the unlocked BeginBlock (a notify in the window bumps
		// gen, so the second check falls through without sleeping).
		p.waitMu.Lock()
		if p.waitGen == gen {
			p.waitMu.Unlock()
			p.BeginBlock()
			p.waitMu.Lock()
			for p.waitGen == gen && !p.quiesce.Load() {
				p.waitCond.Wait()
			}
			p.waitMu.Unlock()
			p.EndBlock()
		} else {
			p.waitMu.Unlock()
		}
	}
}

// --- identity accessors ---

// Getppid returns the parent pid.
func (p *Process) Getppid() int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ppid
}

// Getpgid returns the process group of pid (0 = caller).
func (p *Process) Getpgid(pid int32) (int32, linux.Errno) {
	t := p
	if pid != 0 && pid != p.PID {
		var ok bool
		t, ok = p.K.Process(pid)
		if !ok {
			return -1, linux.ESRCH
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pgid, 0
}

// Setpgid moves pid (0 = caller) into process group pgid (0 = own pid).
func (p *Process) Setpgid(pid, pgid int32) linux.Errno {
	t := p
	if pid != 0 && pid != p.PID {
		var ok bool
		t, ok = p.K.Process(pid)
		if !ok {
			return linux.ESRCH
		}
	}
	if pgid < 0 {
		return linux.EINVAL
	}
	if pgid == 0 {
		pgid = t.PID
	}
	t.mu.Lock()
	t.pgid = pgid
	t.mu.Unlock()
	return 0
}

// Setsid makes the caller a session and group leader.
func (p *Process) Setsid() (int32, linux.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pgid == p.PID {
		return -1, linux.EPERM
	}
	p.sid = p.PID
	p.pgid = p.PID
	return p.PID, 0
}

// Getsid returns the session id.
func (p *Process) Getsid() int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sid
}

// Comm returns the process name.
func (p *Process) Comm() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.comm
}

// Argv returns the command-line vector.
func (p *Process) Argv() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.argv...)
}

// Envp returns the environment vector.
func (p *Process) Envp() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.envp...)
}

func (p *Process) uid() uint32 {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	return p.creds.uid
}

func (p *Process) gid() uint32 {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	return p.creds.gid
}

// Creds returns (uid, euid, gid, egid).
func (p *Process) Creds() (uint32, uint32, uint32, uint32) {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	return p.creds.uid, p.creds.euid, p.creds.gid, p.creds.egid
}

// SetUID implements setuid (simplified: no saved-set semantics).
func (p *Process) SetUID(uid uint32) linux.Errno {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	if p.creds.euid != 0 && uid != p.creds.uid {
		return linux.EPERM
	}
	p.creds.uid = uid
	p.creds.euid = uid
	return 0
}

// SetGID implements setgid.
func (p *Process) SetGID(gid uint32) linux.Errno {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	if p.creds.euid != 0 && gid != p.creds.gid {
		return linux.EPERM
	}
	p.creds.gid = gid
	p.creds.egid = gid
	return 0
}

// Groups returns supplementary groups.
func (p *Process) Groups() []uint32 {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	return append([]uint32(nil), p.creds.groups...)
}

// SetGroups sets supplementary groups.
func (p *Process) SetGroups(g []uint32) linux.Errno {
	p.creds.mu.Lock()
	defer p.creds.mu.Unlock()
	if p.creds.euid != 0 {
		return linux.EPERM
	}
	p.creds.groups = append([]uint32(nil), g...)
	return 0
}

// Cwd returns the current directory.
func (p *Process) Cwd() string {
	p.fs.mu.Lock()
	defer p.fs.mu.Unlock()
	return p.fs.cwd
}

// Umask sets the file creation mask, returning the previous value.
func (p *Process) Umask(mask uint32) uint32 {
	p.fs.mu.Lock()
	defer p.fs.mu.Unlock()
	old := p.fs.umask
	p.fs.umask = mask & 0o777
	return old
}

// AddCPUTime accrues rusage times (the WALI layer attributes measured
// execution time here).
func (p *Process) AddCPUTime(userNs, sysNs int64) {
	p.mu.Lock()
	p.utimeNs += userNs
	p.stimeNs += sysNs
	p.mu.Unlock()
}

// Rusage returns accumulated usage for RUSAGE_SELF.
func (p *Process) Rusage() linux.Rusage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return linux.Rusage{
		Utime: linux.TimespecFromNanos(p.utimeNs),
		Stime: linux.TimespecFromNanos(p.stimeNs),
	}
}

// StartMonotonic returns the process start time on the monotonic clock.
func (p *Process) StartMonotonic() linux.Timespec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startMono
}

// SetClearTID records the CLONE_CHILD_CLEARTID / set_tid_address address;
// the WALI layer performs the memory write + futex wake at exit since it
// owns the address space.
func (p *Process) SetClearTID(addr uint32) {
	p.mu.Lock()
	p.clearTIDAddr = addr
	p.mu.Unlock()
}

// ClearTID returns the recorded clear-child-tid address.
func (p *Process) ClearTID() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clearTIDAddr
}

// Prlimit gets/sets a resource limit. newLim nil = query only.
func (p *Process) Prlimit(res int32, newLim *[2]uint64) ([2]uint64, linux.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old, ok := p.limits[res]
	if !ok {
		old = [2]uint64{linux.RLIM_INFINITY, linux.RLIM_INFINITY}
	}
	if newLim != nil {
		if newLim[0] > newLim[1] {
			return old, linux.EINVAL
		}
		p.limits[res] = *newLim
		if res == linux.RLIMIT_NOFILE {
			p.FDs.SetLimit(int(newLim[0]))
		}
	}
	return old, 0
}

// Alarm schedules SIGALRM after seconds (0 cancels), returning seconds
// remaining on any previous alarm (approximated as 0).
func (p *Process) Alarm(seconds uint32) uint32 {
	p.mu.Lock()
	if p.alarmTimer != nil {
		p.alarmTimer.Stop()
		p.alarmTimer = nil
	}
	if seconds > 0 {
		p.alarmTimer = time.AfterFunc(time.Duration(seconds)*time.Second, func() {
			p.PostSignal(linux.SIGALRM)
		})
	}
	p.mu.Unlock()
	return 0
}

func cloneLimits(m map[int32][2]uint64) map[int32][2]uint64 {
	out := make(map[int32][2]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Alive reports whether the process is still running (not zombie/dead).
func (p *Process) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == stateRunning
}

package kernel

// Quiesce: the snapshot rendezvous. A snapshotter asks a running guest to
// park at its next safepoint by raising the quiesce flag and waking every
// sleep the guest's thread might be in. Blocking syscalls observe the
// flag exactly where they observe deliverable signals and return EINTR;
// the interpreter then reaches its next safepoint poll, where the
// engine-side handler (core.pollSignals) performs the capture on the
// guest's own goroutine — the only place its execution state is
// consistent. The flag is advisory and non-destructive: after capture the
// requester clears it and the guest resumes.

// RequestQuiesce asks this process to park at its next safepoint. It
// wakes every interruptible sleep the task may be in: fd/futex waits
// (signal pollQ), sigsuspend/pause/sigtimedwait (signal cond) and wait4
// (the wait condition).
func (p *Process) RequestQuiesce() {
	p.quiesce.Store(true)
	p.sig.pollQ.Wake()
	p.sig.mu.Lock()
	p.sig.cond.Broadcast()
	p.sig.mu.Unlock()
	p.notifyWaiters()
}

// ClearQuiesce releases a parked process (snapshot finished or aborted).
func (p *Process) ClearQuiesce() { p.quiesce.Store(false) }

// QuiesceRequested reports whether a snapshot rendezvous is pending. The
// engine polls it at safepoints through the same path as signal checks.
func (p *Process) QuiesceRequested() bool { return p.quiesce.Load() }

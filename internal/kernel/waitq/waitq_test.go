package waitq

import (
	"sync"
	"testing"
	"time"
)

func TestWakeBeforeArmIsNotLost(t *testing.T) {
	// The poll protocol: arm, re-check, block. A Wake between the state
	// change and Add is handled by the re-check; a Wake after Add must
	// reach the channel.
	var q Queue
	w := NewWaiter()
	q.Add(w)
	q.Wake()
	select {
	case <-w.C:
	case <-time.After(time.Second):
		t.Fatal("armed waiter missed a wake")
	}
}

func TestWakeCollapses(t *testing.T) {
	var q Queue
	w := NewWaiter()
	q.Add(w)
	q.Wake()
	q.Wake()
	q.Wake()
	<-w.C
	select {
	case <-w.C:
		t.Fatal("wakeups should collapse to one")
	default:
	}
}

func TestRemoveStopsWakeups(t *testing.T) {
	var q Queue
	w := NewWaiter()
	q.Add(w)
	q.Remove(w)
	q.Wake()
	select {
	case <-w.C:
		t.Fatal("removed waiter woke")
	default:
	}
}

func TestOneWaiterManyQueues(t *testing.T) {
	var a, b Queue
	w := NewWaiter()
	a.Add(w)
	b.Add(w)
	defer a.Remove(w)
	defer b.Remove(w)
	b.Wake()
	select {
	case <-w.C:
	case <-time.After(time.Second):
		t.Fatal("second queue did not wake the shared waiter")
	}
}

func TestConcurrentArmWake(t *testing.T) {
	// Race Add/Remove against Wake: every armed waiter that observes
	// not-ready must eventually be woken by the Wake that follows the
	// state change.
	var q Queue
	var ready sync.Map
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWaiter()
			for j := 0; j < 200; j++ {
				q.Add(w)
				if _, ok := ready.Load(j); !ok {
					select {
					case <-w.C:
					case <-time.After(5 * time.Second):
						t.Errorf("waiter %d stuck at round %d", i, j)
						q.Remove(w)
						return
					}
				}
				q.Remove(w)
				w.Clear()
			}
		}(i)
	}
	for j := 0; j < 200; j++ {
		ready.Store(j, true)
		q.Wake()
		time.Sleep(50 * time.Microsecond)
		q.Wake() // stragglers that armed after the first wake
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		case <-time.After(10 * time.Millisecond):
			q.Wake() // keep nudging until everyone drains
		}
	}
}

// Package waitq provides the kernel's wait queues: the event-driven
// readiness substrate behind poll/select/epoll. A Queue belongs to a
// waitable object (a pipe, a socket buffer, a listener's accept queue)
// and is woken whenever the object's readiness may have changed; a
// Waiter is one blocked task, registrable on any number of queues at
// once (poll over many fds = one waiter on many queues).
//
// The protocol is level-triggered and tolerant of spurious wakeups:
// a waiter arms itself on every relevant queue, re-checks readiness,
// and only then blocks on its channel. Wake happens after the state
// change it advertises, so the re-check closes the lost-wakeup window.
// Queues with no waiters — the overwhelmingly common case on data-path
// operations — pay one atomic load per Wake.
package waitq

import (
	"sync"
	"sync/atomic"
)

// Waiter is one blocked task. C carries at most one pending wakeup;
// waking an already-woken waiter is a no-op, and a waiter re-checks
// readiness after every receive, so collapsing wakeups is safe.
type Waiter struct {
	C chan struct{}
}

// NewWaiter returns a waiter ready to arm on queues.
func NewWaiter() *Waiter { return &Waiter{C: make(chan struct{}, 1)} }

// Clear drains a pending wakeup so the next block waits for a fresh
// one. Call between readiness re-checks when reusing a waiter.
func (w *Waiter) Clear() {
	select {
	case <-w.C:
	default:
	}
}

// wake delivers a (collapsing) wakeup.
func (w *Waiter) wake() {
	select {
	case w.C <- struct{}{}:
	default:
	}
}

// Queue is one object's set of blocked waiters.
type Queue struct {
	// armed mirrors len(waiters) so the no-waiter Wake fast path is a
	// single atomic load, keeping wait queues ~free for data-path
	// operations nobody is polling.
	armed   atomic.Int32
	mu      sync.Mutex
	waiters map[*Waiter]struct{}
}

// Add arms w on q. The caller must re-check readiness after arming
// (and before blocking) to close the lost-wakeup window.
func (q *Queue) Add(w *Waiter) {
	q.mu.Lock()
	if q.waiters == nil {
		q.waiters = make(map[*Waiter]struct{})
	}
	q.waiters[w] = struct{}{}
	q.armed.Store(int32(len(q.waiters)))
	q.mu.Unlock()
}

// Remove disarms w from q. Safe to call whether or not w is armed.
func (q *Queue) Remove(w *Waiter) {
	q.mu.Lock()
	delete(q.waiters, w)
	q.armed.Store(int32(len(q.waiters)))
	q.mu.Unlock()
}

// Wake notifies every armed waiter that readiness may have changed.
// Call after releasing the object's own lock where possible; calling
// under it is also correct (waiters only re-check, never call back).
func (q *Queue) Wake() {
	if q.armed.Load() == 0 {
		return
	}
	q.mu.Lock()
	for w := range q.waiters {
		w.wake()
	}
	q.mu.Unlock()
}

package net

import (
	gonet "net"
	"sync"
	"sync/atomic"
	"testing"

	"gowali/internal/linux"
)

// Stress the accept path: many goroutines racing connect against an
// accept loop, with the listener torn down mid-flight. Run with -race
// (the CI kernel matrix includes this package). Differential across
// all three backends — same pattern as the VFS backend suite.
func TestStressConnectAcceptClose(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			addr := Addr{Family: linux.AF_INET, Port: 9090}
			l, errno := b.Listen(addr, 64)
			if errno != 0 {
				t.Fatalf("listen: %v", errno)
			}
			dial := Addr{Family: linux.AF_INET, Port: 9090, Addr: [4]byte{127, 0, 0, 1}}
			if b.Name() == "host" {
				ta, err := gonet.ResolveTCPAddr("tcp", b.(*HostNet).BoundAddr(9090))
				if err != nil {
					t.Fatal(err)
				}
				dial.Port = uint16(ta.Port)
			}

			const dialers = 8
			const perDialer = 25
			var served, connected atomic.Int64

			// Accept loop: echo one byte on every connection, then
			// close it. Exits when the listener dies.
			acceptorDone := make(chan struct{})
			go func() {
				defer close(acceptorDone)
				for {
					c, _, errno := l.Accept(false)
					if errno != 0 {
						return
					}
					served.Add(1)
					buf := make([]byte, 1)
					if n, errno := c.Read(buf, false); errno == 0 && n == 1 {
						c.Write(buf, false)
					}
					c.Close()
				}
			}()

			var wg sync.WaitGroup
			for d := 0; d < dialers; d++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perDialer; i++ {
						c, errno := b.Connect(dial, Addr{})
						if errno != 0 {
							continue // refused mid-teardown: fine
						}
						connected.Add(1)
						if _, errno := c.Write([]byte("x"), false); errno == 0 {
							buf := make([]byte, 1)
							c.Read(buf, false) // EOF or the echo; both fine
						}
						c.Close()
					}
				}()
			}
			wg.Wait()
			if served.Load() == 0 || connected.Load() == 0 {
				t.Fatalf("nothing flowed: served=%d connected=%d", served.Load(), connected.Load())
			}

			// Second phase: connects racing the listener teardown must
			// either succeed or fail cleanly, never hang or panic; the
			// close also unblocks the accept loop.
			var wg2 sync.WaitGroup
			for d := 0; d < dialers; d++ {
				wg2.Add(1)
				go func() {
					defer wg2.Done()
					for i := 0; i < perDialer; i++ {
						if c, errno := b.Connect(dial, Addr{}); errno == 0 {
							c.Close()
						}
					}
				}()
			}
			l.Close()
			wg2.Wait()
			<-acceptorDone
		})
	}
}

// Stress datagram delivery racing the receiver's close: packets must
// either land or be refused; the queue must never deliver after close
// or deadlock a blocked receiver.
func TestStressDgramSendVsClose(t *testing.T) {
	for name, b := range testBackends(t) {
		if name == "host" {
			// Host UDP close semantics are the OS kernel's; the pump
			// test above covers the wrapper.
			continue
		}
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 20; round++ {
				rx, errno := b.Dgram(Addr{Family: linux.AF_INET, Port: 9090})
				if errno != 0 {
					t.Fatalf("dgram: %v", errno)
				}
				tx, errno := b.Dgram(Addr{Family: linux.AF_INET, Port: uint16(10000 + round)})
				if errno != 0 {
					t.Fatalf("dgram tx: %v", errno)
				}
				dest := Addr{Family: linux.AF_INET, Port: 9090, Addr: [4]byte{127, 0, 0, 1}}

				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						if _, errno := tx.SendTo([]byte("p"), dest); errno != 0 {
							return // receiver gone
						}
					}
				}()
				go func() {
					defer wg.Done()
					buf := make([]byte, 4)
					for {
						n, _, errno := rx.RecvFrom(buf, false)
						if errno != 0 || n == 0 {
							return // closed and drained
						}
					}
				}()
				rx.Close() // race both loops against teardown
				wg.Wait()
				tx.Close()
			}
		})
	}
}

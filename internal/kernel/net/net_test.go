package net

import (
	gonet "net"
	"testing"

	"gowali/internal/linux"
)

// testBackends builds one instance of every backend. The hostnet rows
// bind real 127.0.0.1 sockets with host-assigned ports.
func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	sw := NewSwitch()
	node, err := sw.Node("10.1.0.1")
	if err != nil {
		t.Fatal(err)
	}
	hn := NewHostNet(HostNetConfig{
		Binds: map[uint16]string{9090: "127.0.0.1:0"},
		Allow: []string{"127.0.0.1:*"},
	})
	t.Cleanup(hn.Close)
	return map[string]Backend{"loopback": NewLoopback(), "switch": node, "host": hn}
}

// hostDial adjusts the dial address for the host backend, which
// rewrites the listen side: guests still dial the guest address, but
// the test's in-process "guest" must too.
func connectTo(t *testing.T, b Backend, port uint16) Conn {
	t.Helper()
	c, errno := b.Connect(Addr{Family: linux.AF_INET, Port: port, Addr: [4]byte{127, 0, 0, 1}}, Addr{})
	if errno != 0 {
		t.Fatalf("%s: connect: %v", b.Name(), errno)
	}
	return c
}

func TestStreamEchoDifferential(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			addr := Addr{Family: linux.AF_INET, Port: 9090}
			l, errno := b.Listen(addr, 8)
			if errno != 0 {
				t.Fatalf("listen: %v", errno)
			}
			defer l.Close()

			var dial Addr
			if b.Name() == "host" {
				// Dial the real host listener the mapping produced.
				ta, err := gonet.ResolveTCPAddr("tcp", b.(*HostNet).BoundAddr(9090))
				if err != nil {
					t.Fatal(err)
				}
				dial = Addr{Family: linux.AF_INET, Port: uint16(ta.Port), Addr: [4]byte{127, 0, 0, 1}}
			} else {
				dial = Addr{Family: linux.AF_INET, Port: 9090, Addr: [4]byte{127, 0, 0, 1}}
			}

			cli, errno := b.Connect(dial, Addr{})
			if errno != 0 {
				t.Fatalf("connect: %v", errno)
			}
			srv, _, errno := l.Accept(false)
			if errno != 0 {
				t.Fatalf("accept: %v", errno)
			}

			if _, errno := cli.Write([]byte("GET"), false); errno != 0 {
				t.Fatalf("write: %v", errno)
			}
			buf := make([]byte, 16)
			n, errno := srv.Read(buf, false)
			if errno != 0 || string(buf[:n]) != "GET" {
				t.Fatalf("read: %q %v", buf[:n], errno)
			}
			if _, errno := srv.Write([]byte("OK"), false); errno != 0 {
				t.Fatalf("echo write: %v", errno)
			}
			got := 0
			for got < 2 {
				n, errno = cli.Read(buf[got:], false)
				if errno != 0 || n == 0 {
					t.Fatalf("echo read: n=%d %v", n, errno)
				}
				got += n
			}
			if string(buf[:2]) != "OK" {
				t.Fatalf("echo: %q", buf[:2])
			}

			// Close server end: client drains to EOF.
			srv.Close()
			for {
				n, errno := cli.Read(buf, false)
				if errno != 0 {
					t.Fatalf("EOF read: %v", errno)
				}
				if n == 0 {
					break
				}
			}
			cli.Close()
		})
	}
}

func TestConnectRefusedDifferential(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			dial := Addr{Family: linux.AF_INET, Port: 1, Addr: [4]byte{127, 0, 0, 1}}
			if b.Name() == "host" {
				// Port 1 is allowed by pattern but nothing listens.
				if _, errno := b.Connect(dial, Addr{}); errno == 0 {
					t.Fatal("connect to closed host port succeeded")
				}
				return
			}
			if _, errno := b.Connect(dial, Addr{}); errno != linux.ECONNREFUSED {
				t.Fatalf("connect: %v, want ECONNREFUSED", errno)
			}
		})
	}
}

func TestListenConflictDifferential(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			addr := Addr{Family: linux.AF_INET, Port: 9090}
			l, errno := b.Listen(addr, 1)
			if errno != 0 {
				t.Fatalf("listen: %v", errno)
			}
			defer l.Close()
			if _, errno := b.Listen(addr, 1); errno != linux.EADDRINUSE {
				t.Fatalf("double listen: %v, want EADDRINUSE", errno)
			}
		})
	}
}

func TestEphemeralBind(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			a, errno := b.BindAddr(Addr{Family: linux.AF_INET})
			if errno != 0 || a.Port == 0 {
				t.Fatalf("BindAddr: port=%d %v", a.Port, errno)
			}
		})
	}
}

func TestDgramRoundTrip(t *testing.T) {
	// Loopback and switch deliver in-process; hostnet through real UDP.
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			recvAddr := Addr{Family: linux.AF_INET, Port: 9090}
			rx, errno := b.Dgram(recvAddr)
			if errno != 0 {
				t.Fatalf("dgram bind: %v", errno)
			}
			defer rx.Close()
			txAddr, _ := b.BindAddr(Addr{Family: linux.AF_INET})
			tx, errno := b.Dgram(txAddr)
			if errno != 0 {
				t.Fatalf("dgram tx bind: %v", errno)
			}
			defer tx.Close()

			dest := Addr{Family: linux.AF_INET, Port: 9090, Addr: [4]byte{127, 0, 0, 1}}
			if b.Name() == "host" {
				ua, err := gonet.ResolveUDPAddr("udp", b.(*HostNet).BoundAddr(9090))
				if err != nil {
					t.Fatal(err)
				}
				dest.Port = uint16(ua.Port)
			}
			if _, errno := tx.SendTo([]byte("dgram"), dest); errno != 0 {
				t.Fatalf("sendto: %v", errno)
			}
			// Blocking receive: host UDP delivery is asynchronous.
			buf := make([]byte, 16)
			n, _, errno := rx.RecvFrom(buf, false)
			if errno != 0 || string(buf[:n]) != "dgram" {
				t.Fatalf("recvfrom: %q %v", buf[:n], errno)
			}
		})
	}
}

func TestSwitchCrossNodeRouting(t *testing.T) {
	sw := NewSwitch()
	a, err := sw.Node("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	bn, err := sw.Node("10.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Node("10.0.0.1"); err == nil {
		t.Fatal("duplicate node address accepted")
	}

	// Node A listens on its wildcard; node B dials A's address.
	l, errno := a.Listen(Addr{Family: linux.AF_INET, Port: 80}, 4)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	defer l.Close()
	cli, errno := bn.Connect(Addr{Family: linux.AF_INET, Port: 80, Addr: [4]byte{10, 0, 0, 1}}, Addr{Family: linux.AF_INET})
	if errno != 0 {
		t.Fatalf("cross-node connect: %v", errno)
	}
	srv, peer, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	// The wildcard client source must have been rewritten to B's IP so
	// the server can name (and reply to) the right node.
	if peer.Addr != [4]byte{10, 0, 0, 2} {
		t.Fatalf("peer addr = %v, want 10.0.0.2", peer)
	}
	if _, errno := cli.Write([]byte("x"), false); errno != 0 {
		t.Fatalf("write: %v", errno)
	}
	buf := make([]byte, 4)
	if n, errno := srv.Read(buf, false); errno != 0 || n != 1 {
		t.Fatalf("read: %d %v", n, errno)
	}

	// B's loopback port space is disjoint from A's: dialing 127.0.0.1
	// from B must not reach A's listener.
	if _, errno := bn.Connect(Addr{Family: linux.AF_INET, Port: 80, Addr: [4]byte{127, 0, 0, 1}}, Addr{}); errno != linux.ECONNREFUSED {
		t.Fatalf("loopback leak across nodes: %v", errno)
	}
	// A kernel cannot bind another node's address.
	if _, errno := a.BindAddr(Addr{Family: linux.AF_INET, Port: 81, Addr: [4]byte{10, 0, 0, 2}}); errno != linux.EADDRNOTAVAIL {
		t.Fatalf("foreign bind: %v", errno)
	}
}

func TestSwitchCrossNodeDgram(t *testing.T) {
	sw := NewSwitch()
	a, _ := sw.Node("10.0.0.1")
	b, _ := sw.Node("10.0.0.2")
	rx, errno := a.Dgram(Addr{Family: linux.AF_INET, Port: 53})
	if errno != 0 {
		t.Fatalf("dgram: %v", errno)
	}
	tx, errno := b.Dgram(Addr{Family: linux.AF_INET, Port: 1053})
	if errno != 0 {
		t.Fatalf("dgram: %v", errno)
	}
	if _, errno := tx.SendTo([]byte("q"), Addr{Family: linux.AF_INET, Port: 53, Addr: [4]byte{10, 0, 0, 1}}); errno != 0 {
		t.Fatalf("sendto: %v", errno)
	}
	buf := make([]byte, 4)
	n, from, errno := rx.RecvFrom(buf, false)
	if errno != 0 || n != 1 {
		t.Fatalf("recv: %d %v", n, errno)
	}
	if from.Addr != [4]byte{10, 0, 0, 2} || from.Port != 1053 {
		t.Fatalf("from = %v, want 10.0.0.2:1053", from)
	}
	// Reply routes back by the observed source.
	if _, errno := rx.SendTo([]byte("r"), from); errno != 0 {
		t.Fatalf("reply: %v", errno)
	}
	if n, _, errno := tx.RecvFrom(buf, false); errno != 0 || n != 1 {
		t.Fatalf("reply recv: %d %v", n, errno)
	}
}

func TestHostNetPolicy(t *testing.T) {
	hn := NewHostNet(HostNetConfig{})
	defer hn.Close()
	// No bind mapping: guest listen is denied.
	if _, errno := hn.Listen(Addr{Family: linux.AF_INET, Port: 80}, 1); errno != linux.EACCES {
		t.Fatalf("unmapped listen: %v, want EACCES", errno)
	}
	// Empty allowlist: outbound denied before any dial happens.
	if _, errno := hn.Connect(Addr{Family: linux.AF_INET, Port: 80, Addr: [4]byte{127, 0, 0, 1}}, Addr{}); errno != linux.EACCES {
		t.Fatalf("denied connect: %v, want EACCES", errno)
	}
	// Unix sockets are not hostnet's business.
	if _, errno := hn.Listen(Addr{Family: linux.AF_UNIX, Path: "/x"}, 1); errno != linux.EAFNOSUPPORT {
		t.Fatalf("unix listen: %v, want EAFNOSUPPORT", errno)
	}
}

func TestHostNetAllowPatterns(t *testing.T) {
	cases := []struct {
		allow []string
		want  bool
	}{
		{nil, false},
		{[]string{"*"}, true},
		{[]string{"127.0.0.1:80"}, true},
		{[]string{"127.0.0.1:*"}, true},
		{[]string{"*:80"}, true},
		{[]string{"*:81"}, false},
		{[]string{"10.0.0.1:*"}, false},
	}
	for _, c := range cases {
		hn := NewHostNet(HostNetConfig{Allow: c.allow})
		got := hn.allowed(Addr{Family: linux.AF_INET, Port: 80, Addr: [4]byte{127, 0, 0, 1}})
		hn.Close()
		if got != c.want {
			t.Errorf("allow=%v: got %v, want %v", c.allow, got, c.want)
		}
	}
}

func TestStreamPairEOFAndEPIPE(t *testing.T) {
	a, b := NewStreamPair()
	if _, errno := a.Write([]byte("hi"), false); errno != 0 {
		t.Fatalf("write: %v", errno)
	}
	buf := make([]byte, 4)
	if n, errno := b.Read(buf, false); errno != 0 || string(buf[:n]) != "hi" {
		t.Fatalf("read: %q %v", buf[:n], errno)
	}
	b.Close()
	if n, errno := a.Read(buf, false); n != 0 || errno != 0 {
		t.Fatalf("EOF after peer close: n=%d %v", n, errno)
	}
	if _, errno := a.Write([]byte("x"), false); errno != linux.EPIPE {
		t.Fatalf("write after peer close: %v, want EPIPE", errno)
	}
}

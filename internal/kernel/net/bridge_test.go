package net

import (
	"bytes"
	"encoding/binary"
	"fmt"
	gonet "net"
	"runtime"
	"testing"
	"time"

	"gowali/internal/linux"
)

// bridgedPair builds a two-switch fabric over a localhost TCP trunk:
// switch A (10.20.1.0/24) listens, switch B (10.20.2.0/24) joins.
func bridgedPair(t *testing.T) (swA, swB *Switch, nodeA, nodeB Backend) {
	t.Helper()
	swA, swB = NewSwitch(), NewSwitch()
	if err := swA.SetSubnets("10.20.1.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := swB.SetSubnets("10.20.2.0/24"); err != nil {
		t.Fatal(err)
	}
	bs, err := swA.BridgeListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodeA = allocNode(t, swA)
	nodeB = allocNode(t, swB)
	if _, err := swB.BridgeDial(bs.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { swA.Close(); swB.Close() })
	waitRoutes(t, swA, 1)
	waitRoutes(t, swB, 1)
	return swA, swB, nodeA, nodeB
}

func allocNode(t *testing.T, sw *Switch) Backend {
	t.Helper()
	n, _, err := sw.AllocNode()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func waitRoutes(t *testing.T, sw *Switch, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sw.RouteCount() < want {
		if time.Now().After(deadline) {
			t.Fatalf("switch learned %d routes, want %d", sw.RouteCount(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func inet(ip string, port uint16) Addr {
	p, err := ParseCIDR(ip)
	if err != nil {
		panic(err)
	}
	return Addr{Family: linux.AF_INET, Port: port, Addr: p.IP}
}

func TestBridgeStreamEcho(t *testing.T) {
	_, _, nodeA, nodeB := bridgedPair(t)

	l, errno := nodeA.Listen(Addr{Family: linux.AF_INET, Port: 9191}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	defer l.Close()

	// The client binds nothing: the wildcard source must be rewritten
	// to its node address before crossing the bridge hop, or the
	// accepting side cannot name (or reach) its peer.
	cli, errno := nodeB.Connect(inet("10.20.1.1", 9191), Addr{})
	if errno != 0 {
		t.Fatalf("connect across bridge: %v", errno)
	}
	srv, peer, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	if want := inet("10.20.2.1", 0).Addr; peer.Addr != want {
		t.Fatalf("peer across bridge = %v, want 10.20.2.1 (wildcard source rewrite)", peer)
	}

	if _, errno := cli.Write([]byte("ping over trunk"), false); errno != 0 {
		t.Fatalf("client write: %v", errno)
	}
	buf := make([]byte, 64)
	n, errno := srv.Read(buf, false)
	if errno != 0 || string(buf[:n]) != "ping over trunk" {
		t.Fatalf("server read: %q %v", buf[:n], errno)
	}
	if _, errno := srv.Write([]byte("pong"), false); errno != 0 {
		t.Fatalf("server write: %v", errno)
	}
	n, errno = cli.Read(buf, false)
	if errno != 0 || string(buf[:n]) != "pong" {
		t.Fatalf("client read: %q %v", buf[:n], errno)
	}

	// Orderly shutdown: FIN crosses the trunk as EOF, not a reset.
	cli.CloseWrite()
	if n, errno := srv.Read(buf, false); n != 0 || errno != 0 {
		t.Fatalf("after client FIN: read = %d, %v, want clean EOF", n, errno)
	}
	srv.Close()
	if n, errno := cli.Read(buf, false); n != 0 || errno != 0 {
		t.Fatalf("after server close: read = %d, %v, want clean EOF", n, errno)
	}
	cli.Close()
}

// TestBridgeLargeTransfer pushes far more than one flow-control window
// through the trunk and verifies content and order end to end.
func TestBridgeLargeTransfer(t *testing.T) {
	_, _, nodeA, nodeB := bridgedPair(t)

	l, errno := nodeA.Listen(Addr{Family: linux.AF_INET, Port: 9192}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	defer l.Close()
	cli, errno := nodeB.Connect(inet("10.20.1.1", 9192), Addr{})
	if errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	srv, _, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}

	const total = 2 << 20 // 16× the bridge window
	go func() {
		var seq [8]byte
		chunk := make([]byte, 8192)
		sent := 0
		for sent < total {
			for i := 0; i+8 <= len(chunk); i += 8 {
				binary.BigEndian.PutUint64(seq[:], uint64(sent+i))
				copy(chunk[i:], seq[:])
			}
			n := len(chunk)
			if total-sent < n {
				n = total - sent
			}
			off := 0
			for off < n {
				w, errno := cli.Write(chunk[off:n], false)
				if errno != 0 {
					t.Errorf("writer: %v at %d", errno, sent+off)
					return
				}
				off += w
			}
			sent += n
		}
		cli.CloseWrite()
	}()

	got := 0
	buf := make([]byte, 8192)
	for {
		n, errno := srv.Read(buf, false)
		if errno != 0 {
			t.Fatalf("reader: %v at %d", errno, got)
		}
		if n == 0 {
			break
		}
		// Verify aligned sequence markers to catch reordering/drops.
		for i := 0; i < n; i++ {
			pos := got + i
			if pos%8192 == 0 && i+8 <= n {
				if v := binary.BigEndian.Uint64(buf[i:]); v != uint64(pos) {
					t.Fatalf("sequence at %d = %d", pos, v)
				}
			}
		}
		got += n
	}
	if got != total {
		t.Fatalf("received %d bytes, want %d", got, total)
	}
	srv.Close()
	cli.Close()
}

// TestBridgeDgramRemote routes datagrams to a node on the far switch,
// rewriting the wildcard source on the way (satellite: dgram routing
// to a remote node).
func TestBridgeDgramRemote(t *testing.T) {
	_, _, nodeA, nodeB := bridgedPair(t)

	d, errno := nodeA.Dgram(Addr{Family: linux.AF_INET, Port: 5353})
	if errno != 0 {
		t.Fatalf("dgram bind: %v", errno)
	}
	defer d.Close()
	src, errno := nodeB.Dgram(Addr{Family: linux.AF_INET, Port: 5454})
	if errno != 0 {
		t.Fatalf("dgram bind: %v", errno)
	}
	defer src.Close()

	if _, errno := src.SendTo([]byte("dns?"), inet("10.20.1.1", 5353)); errno != 0 {
		t.Fatalf("sendto across bridge: %v", errno)
	}
	buf := make([]byte, 64)
	n, from, errno := d.RecvFrom(buf, false)
	if errno != 0 || string(buf[:n]) != "dns?" {
		t.Fatalf("recvfrom: %q %v", buf[:n], errno)
	}
	if from.Addr != inet("10.20.2.1", 0).Addr || from.Port != 5454 {
		t.Fatalf("dgram source = %v, want 10.20.2.1:5454", from)
	}
	// And the reply routes back using that source address.
	if _, errno := d.SendTo([]byte("a record"), from); errno != 0 {
		t.Fatalf("reply: %v", errno)
	}
	n, _, errno = src.RecvFrom(buf, false)
	if errno != 0 || string(buf[:n]) != "a record" {
		t.Fatalf("reply recvfrom: %q %v", buf[:n], errno)
	}
}

// TestBridgeRelay runs a three-switch star: spokes B and C each trunk
// only to hub A, so B→C streams relay through A with no terminating
// state there beyond the id map.
func TestBridgeRelay(t *testing.T) {
	hub, spokeB, spokeC := NewSwitch(), NewSwitch(), NewSwitch()
	for sw, cidr := range map[*Switch]string{hub: "10.21.0.0/24", spokeB: "10.21.1.0/24", spokeC: "10.21.2.0/24"} {
		if err := sw.SetSubnets(cidr); err != nil {
			t.Fatal(err)
		}
	}
	bs, err := hub.BridgeListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close(); spokeB.Close(); spokeC.Close() })
	nodeB := allocNode(t, spokeB)
	nodeC := allocNode(t, spokeC)
	if _, err := spokeB.BridgeDial(bs.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := spokeC.BridgeDial(bs.Addr()); err != nil {
		t.Fatal(err)
	}
	// The hub re-announces each spoke to the other: both ends see two
	// remote prefixes (the hub's own subnet and the far spoke).
	waitRoutes(t, spokeB, 2)
	waitRoutes(t, spokeC, 2)

	l, errno := nodeC.Listen(Addr{Family: linux.AF_INET, Port: 8080}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	defer l.Close()
	cli, errno := nodeB.Connect(inet("10.21.2.1", 8080), Addr{})
	if errno != 0 {
		t.Fatalf("connect through relay: %v", errno)
	}
	srv, peer, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	if peer.Addr != inet("10.21.1.1", 0).Addr {
		t.Fatalf("relayed peer = %v, want 10.21.1.1", peer)
	}
	payload := bytes.Repeat([]byte("relay"), 64<<10/5) // > one window, relayed
	go func() {
		off := 0
		for off < len(payload) {
			n, errno := cli.Write(payload[off:], false)
			if errno != 0 {
				t.Errorf("relay write: %v", errno)
				return
			}
			off += n
		}
		cli.CloseWrite()
	}()
	var got bytes.Buffer
	buf := make([]byte, 8192)
	for {
		n, errno := srv.Read(buf, false)
		if errno != 0 {
			t.Fatalf("relay read: %v", errno)
		}
		if n == 0 {
			break
		}
		got.Write(buf[:n])
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("relayed payload mismatch: %d bytes, want %d", got.Len(), len(payload))
	}
	srv.Close()
	cli.Close()
}

// TestBridgeKillMidTransfer cuts the trunk while a transfer is in
// flight: both peers must observe ECONNRESET/EOF rather than wedging,
// and once the guest-side conns close, every pump goroutine exits.
func TestBridgeKillMidTransfer(t *testing.T) {
	base := runtime.NumGoroutine()

	swA, swB := NewSwitch(), NewSwitch()
	if err := swA.SetSubnets("10.22.1.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := swB.SetSubnets("10.22.2.0/24"); err != nil {
		t.Fatal(err)
	}
	bs, err := swA.BridgeListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodeA := allocNode(t, swA)
	nodeB := allocNode(t, swB)
	br, err := swB.BridgeDial(bs.Addr())
	if err != nil {
		t.Fatal(err)
	}
	waitRoutes(t, swB, 1)

	l, errno := nodeA.Listen(Addr{Family: linux.AF_INET, Port: 9999}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	cli, errno := nodeB.Connect(inet("10.22.1.1", 9999), Addr{})
	if errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	srv, _, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}

	// Writer floods; reader drains a little, then the trunk dies.
	writerDone := make(chan linux.Errno, 1)
	go func() {
		chunk := make([]byte, 8192)
		for {
			if _, errno := cli.Write(chunk, false); errno != 0 {
				writerDone <- errno
				return
			}
		}
	}()
	buf := make([]byte, 4096)
	for i := 0; i < 8; i++ {
		if _, errno := srv.Read(buf, false); errno != 0 {
			t.Fatalf("pre-kill read: %v", errno)
		}
	}

	br.Close() // kill the TCP trunk mid-transfer

	select {
	case errno := <-writerDone:
		if errno != linux.EPIPE && errno != linux.ECONNRESET {
			t.Fatalf("writer after kill: %v, want EPIPE/ECONNRESET", errno)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer wedged after trunk kill")
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			n, errno := srv.Read(buf, false)
			if errno == linux.ECONNRESET || (n == 0 && errno == 0) {
				return
			}
			if errno != 0 {
				t.Errorf("reader after kill: %v", errno)
				return
			}
		}
	}()
	select {
	case <-readerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reader wedged after trunk kill")
	}
	if n, errno := cli.Read(buf, true); errno != linux.ECONNRESET && !(n == 0 && errno == 0) {
		t.Fatalf("client read after kill: %d, %v, want ECONNRESET/EOF", n, errno)
	}

	// Guest-side closes release the pumps; everything must drain.
	cli.Close()
	srv.Close()
	l.Close()
	nodeA.Close()
	nodeB.Close()
	swA.Close()
	swB.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after trunk kill: %d > %d\n%s",
				runtime.NumGoroutine(), base+1, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBridgeMalformedFrames feeds the trunk endpoint garbage: a bad
// hello, an oversized length prefix, and a truncated frame. Each must
// tear that link down cleanly without wedging the switch, which keeps
// serving well-formed peers afterwards.
func TestBridgeMalformedFrames(t *testing.T) {
	sw := NewSwitch()
	if err := sw.SetSubnets("10.23.1.0/24"); err != nil {
		t.Fatal(err)
	}
	bs, err := sw.BridgeListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Close)

	expectDrop := func(name string, raw []byte) {
		t.Helper()
		c, err := gonet.Dial("tcp", bs.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(raw); err != nil {
			return // already rejected
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				return // link torn down: EOF/RST observed
			}
		}
	}

	badHello := append(binary.BigEndian.AppendUint32(nil, 5), 1, 'X', 'X', 'X', 'X')
	expectDrop("bad hello magic", append(badHello, 0))
	expectDrop("oversized frame", binary.BigEndian.AppendUint32(nil, 0xFFFFFFF0))
	expectDrop("zero-length frame", binary.BigEndian.AppendUint32(nil, 0))
	partial := frameHello()
	expectDrop("truncated frame", partial[:len(partial)-2]) // closes mid-frame

	// The endpoint survives: a well-formed peer still joins and routes.
	swB := NewSwitch()
	if err := swB.SetSubnets("10.23.2.0/24"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(swB.Close)
	if _, err := swB.BridgeDial(bs.Addr()); err != nil {
		t.Fatal(err)
	}
	waitRoutes(t, swB, 1)
}

// TestAllocNodeCollisionExhaustion covers the address-assignment
// corners: explicit collisions, subnet exhaustion, and reuse after a
// node detaches.
func TestAllocNodeCollisionExhaustion(t *testing.T) {
	sw := NewSwitch()
	if err := sw.SetSubnets("10.24.0.0/30"); err != nil { // 2 usable hosts
		t.Fatal(err)
	}
	n1, ip1, err := sw.AllocNode()
	if err != nil {
		t.Fatal(err)
	}
	if ip1 != "10.24.0.1" {
		t.Fatalf("first allocation = %s, want 10.24.0.1", ip1)
	}
	if _, err := sw.Node(ip1); err == nil {
		t.Fatal("explicit attach of an allocated address must collide")
	}
	if _, _, err := sw.AllocNode(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sw.AllocNode(); err == nil {
		t.Fatal("a /30 must exhaust after two allocations")
	}
	// Detaching releases the address for reuse.
	n1.Close()
	_, ip, err := sw.AllocNode()
	if err != nil {
		t.Fatalf("allocation after release: %v", err)
	}
	if ip != ip1 {
		t.Fatalf("released address not reused: got %s, want %s", ip, ip1)
	}
}

// TestNodeTeardown verifies the satellite fix: Close releases the
// node's listeners, datagram queues and address back to the switch.
func TestNodeTeardown(t *testing.T) {
	sw := NewSwitch()
	node, err := sw.Node("10.25.0.1")
	if err != nil {
		t.Fatal(err)
	}
	other, err := sw.Node("10.25.0.2")
	if err != nil {
		t.Fatal(err)
	}
	l, errno := node.Listen(Addr{Family: linux.AF_INET, Port: 7000}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	d, errno := node.Dgram(Addr{Family: linux.AF_INET, Port: 7001})
	if errno != 0 {
		t.Fatalf("dgram: %v", errno)
	}

	// A blocked accept must wake when the node detaches.
	acceptDone := make(chan linux.Errno, 1)
	go func() {
		_, _, errno := l.Accept(false)
		acceptDone <- errno
	}()
	time.Sleep(10 * time.Millisecond)
	node.Close()
	select {
	case errno := <-acceptDone:
		if errno != linux.EINVAL {
			t.Fatalf("accept after teardown: %v, want EINVAL", errno)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept wedged across node teardown")
	}
	if n, _, errno := d.RecvFrom(make([]byte, 8), false); n != 0 || errno != 0 {
		t.Fatalf("dgram recv after teardown: %d, %v, want closed", n, errno)
	}

	// The port is gone from the fabric...
	if _, errno := other.Connect(inet("10.25.0.1", 7000), Addr{}); errno != linux.ECONNREFUSED {
		t.Fatalf("connect to detached node: %v, want ECONNREFUSED", errno)
	}
	// ...and the address is reusable.
	if _, err := sw.Node("10.25.0.1"); err != nil {
		t.Fatalf("address not released: %v", err)
	}
}

// TestBridgeConnectErrors covers the refusal paths: a routed subnet
// with no listener, and a destination no prefix matches.
func TestBridgeConnectErrors(t *testing.T) {
	_, _, _, nodeB := bridgedPair(t)
	if _, errno := nodeB.Connect(inet("10.20.1.1", 4444), Addr{}); errno != linux.ECONNREFUSED {
		t.Fatalf("connect to closed remote port: %v, want ECONNREFUSED", errno)
	}
	if _, errno := nodeB.Connect(inet("192.0.2.9", 80), Addr{}); errno != linux.ECONNREFUSED {
		t.Fatalf("connect to unrouted address: %v, want ECONNREFUSED", errno)
	}
}

// TestPrefixTable pins the longest-prefix-match semantics the fabric
// routes by.
func TestPrefixTable(t *testing.T) {
	var tbl prefixTable
	l1, l2, l3 := &bridgeLink{}, &bridgeLink{}, &bridgeLink{}
	must := func(s string) Prefix {
		p, err := ParseCIDR(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	tbl.insert(route{prefix: must("10.0.0.0/8"), link: l1, hops: 2})
	tbl.insert(route{prefix: must("10.1.0.0/16"), link: l2, hops: 1})
	tbl.insert(route{prefix: must("10.1.2.3/32"), link: l3, hops: 0})

	cases := []struct {
		ip   string
		want *bridgeLink
	}{
		{"10.1.2.3", l3},
		{"10.1.9.9", l2},
		{"10.9.9.9", l1},
		{"11.0.0.1", nil},
	}
	for _, c := range cases {
		ip := must(c.ip).IP
		r := tbl.lookup(ip)
		switch {
		case c.want == nil && r != nil:
			t.Fatalf("%s: unexpected route %v", c.ip, r.prefix)
		case c.want != nil && (r == nil || r.link != c.want):
			t.Fatalf("%s: wrong route", c.ip)
		}
	}
	// Fewer hops replace; more hops don't.
	if !tbl.insert(route{prefix: must("10.0.0.0/8"), link: l2, hops: 1}) {
		t.Fatal("better route must replace")
	}
	if tbl.insert(route{prefix: must("10.0.0.0/8"), link: l3, hops: 5}) {
		t.Fatal("worse route must not replace")
	}
	tbl.dropLink(l2)
	if r := tbl.lookup(must("10.9.9.9").IP); r != nil {
		t.Fatalf("dropped link still routes %v", r.prefix)
	}
}

func TestParseCIDR(t *testing.T) {
	if _, err := ParseCIDR("10.0.0.0/33"); err == nil {
		t.Fatal("prefix /33 must fail")
	}
	if _, err := ParseCIDR("not-an-ip/8"); err == nil {
		t.Fatal("garbage ip must fail")
	}
	p, err := ParseCIDR("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Fatalf("network not normalized: %s", got)
	}
	host, err := ParseCIDR("10.1.2.3")
	if err != nil || host.Bits != 32 {
		t.Fatalf("bare IP = %v/%v, want /32", host, err)
	}
	if !p.Contains([4]byte{10, 1, 200, 9}) || p.Contains([4]byte{10, 2, 0, 1}) {
		t.Fatal("Contains is wrong")
	}
	_ = fmt.Sprintf("%v", p)
}

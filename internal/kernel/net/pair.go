package net

import (
	"sync"

	"gowali/internal/kernel/vfs"
	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// pipeConn is an in-process stream connection end: one vfs.Pipe per
// direction, with POSIX pipe blocking/EPIPE/EOF semantics supplying
// exactly the stream-socket behavior (loopback and switch transports,
// and both halves of socketpair).
type pipeConn struct {
	rx, tx *vfs.Pipe // rx: peer→us, tx: us→peer
	local  Addr
	peer   Addr

	mu        sync.Mutex
	readShut  bool
	writeShut bool
	closed    bool
}

// NewStreamPair wires two connected stream ends (socketpair(2)).
func NewStreamPair() (Conn, Conn) {
	a, b := newConnPair(Addr{Family: linux.AF_UNIX}, Addr{Family: linux.AF_UNIX})
	return a, b
}

// newConnPair builds both ends of a connection: aLocal/bLocal are the
// respective local addresses (each end's peer is the other's local).
func newConnPair(aLocal, bLocal Addr) (*pipeConn, *pipeConn) {
	ab := vfs.NewPipe()
	ba := vfs.NewPipe()
	for _, p := range []*vfs.Pipe{ab, ba} {
		p.AddReader()
		p.AddWriter()
	}
	a := &pipeConn{rx: ba, tx: ab, local: aLocal, peer: bLocal}
	b := &pipeConn{rx: ab, tx: ba, local: bLocal, peer: aLocal}
	return a, b
}

func (c *pipeConn) Read(b []byte, nonblock bool) (int, linux.Errno) {
	c.mu.Lock()
	shut := c.readShut
	c.mu.Unlock()
	if shut {
		return 0, 0
	}
	return c.rx.Read(b, nonblock)
}

func (c *pipeConn) Write(b []byte, nonblock bool) (int, linux.Errno) {
	c.mu.Lock()
	shut := c.writeShut || c.closed
	c.mu.Unlock()
	if shut {
		return 0, linux.EPIPE
	}
	return c.tx.Write(b, nonblock)
}

func (c *pipeConn) CloseRead() {
	c.mu.Lock()
	if c.readShut || c.closed {
		c.mu.Unlock()
		return
	}
	c.readShut = true
	c.mu.Unlock()
	c.rx.CloseReader()
}

func (c *pipeConn) CloseWrite() {
	c.mu.Lock()
	if c.writeShut || c.closed {
		c.mu.Unlock()
		return
	}
	c.writeShut = true
	c.mu.Unlock()
	c.tx.CloseWriter()
}

func (c *pipeConn) Close() linux.Errno {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0
	}
	rdOpen, wrOpen := !c.readShut, !c.writeShut
	c.closed = true
	c.mu.Unlock()
	if rdOpen {
		c.rx.CloseReader()
	}
	if wrOpen {
		c.tx.CloseWriter()
	}
	return 0
}

func (c *pipeConn) Readiness() int16 {
	var ev int16
	ev |= c.rx.Poll(true) & (linux.POLLIN | linux.POLLHUP)
	if c.tx.Poll(false)&linux.POLLOUT != 0 {
		ev |= linux.POLLOUT
	}
	return ev
}

func (c *pipeConn) Queues() []*waitq.Queue {
	return []*waitq.Queue{c.rx.Queue(), c.tx.Queue()}
}

func (c *pipeConn) Buffered() int { return c.rx.Buffered() }

func (c *pipeConn) SetOpt(level, opt, val int32) {}

// acceptQueue is the accept-side state machine shared by every
// listener implementation: a bounded pending queue with blocking
// Accept, wait-queue wakeups and orphan handoff on close. Backends
// embed it and add their own registration/teardown around it.
type acceptQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []pendingConn
	closed  bool
	q       waitq.Queue
	backlog int
}

type pendingConn struct {
	c    Conn
	peer Addr
}

func (a *acceptQueue) init(backlog int) {
	a.cond = sync.NewCond(&a.mu)
	if backlog < 1 {
		backlog = 1
	}
	// Generous floor: the sim's guests connect ahead of accept loops
	// far more often than real backlogged servers drop.
	if backlog < 128 {
		backlog = 128
	}
	a.backlog = backlog
}

// push enqueues one established connection; ECONNREFUSED once closed
// or when the backlog is full.
func (a *acceptQueue) push(c Conn, peer Addr) linux.Errno {
	a.mu.Lock()
	if a.closed || len(a.pending) >= a.backlog {
		a.mu.Unlock()
		return linux.ECONNREFUSED
	}
	a.pending = append(a.pending, pendingConn{c: c, peer: peer})
	a.mu.Unlock()
	a.cond.Broadcast()
	a.q.Wake()
	return 0
}

// Accept dequeues one connection; EAGAIN when nonblock and empty,
// EINVAL once closed and drained.
func (a *acceptQueue) Accept(nonblock bool) (Conn, Addr, linux.Errno) {
	a.mu.Lock()
	for len(a.pending) == 0 && !a.closed {
		if nonblock {
			a.mu.Unlock()
			return nil, Addr{}, linux.EAGAIN
		}
		a.cond.Wait()
	}
	if len(a.pending) == 0 {
		a.mu.Unlock()
		return nil, Addr{}, linux.EINVAL
	}
	pc := a.pending[0]
	a.pending = a.pending[1:]
	a.mu.Unlock()
	a.q.Wake() // freed backlog space
	return pc.c, pc.peer, 0
}

// shutdown marks the queue closed and hands back the never-accepted
// connections for the caller to reset; idempotent (nil second time).
func (a *acceptQueue) shutdown() []pendingConn {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	orphans := a.pending
	a.pending = nil
	a.mu.Unlock()
	a.cond.Broadcast()
	a.q.Wake()
	return orphans
}

func (a *acceptQueue) Readiness() int16 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var ev int16
	if len(a.pending) > 0 {
		ev |= linux.POLLIN
	}
	if a.closed {
		ev |= linux.POLLHUP
	}
	return ev
}

func (a *acceptQueue) Queue() *waitq.Queue { return &a.q }

// datagram is one queued packet.
type datagram struct {
	from Addr
	data []byte
}

// dgramQueue is the in-process datagram socket shared by the loopback
// and switch backends: a bounded packet queue with blocking receive
// and wait-queue wakeups.
type dgramQueue struct {
	owner *swNode // routes SendTo; nil only in tests
	local Addr

	mu      sync.Mutex
	cond    *sync.Cond
	packets []datagram
	closed  bool
	q       waitq.Queue
}

// init prepares an embedded or standalone queue.
func (d *dgramQueue) init(owner *swNode, local Addr) {
	d.owner = owner
	d.local = local
	d.cond = sync.NewCond(&d.mu)
}

func newDgramQueue(owner *swNode, local Addr) *dgramQueue {
	d := &dgramQueue{}
	d.init(owner, local)
	return d
}

// enqueue delivers one packet into the queue (the sending side calls
// this through the switch's routing table).
func (d *dgramQueue) enqueue(from Addr, b []byte) linux.Errno {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return linux.ECONNREFUSED
	}
	if len(d.packets) >= maxDgramBacklog {
		d.mu.Unlock()
		return linux.ENOBUFS
	}
	d.packets = append(d.packets, datagram{from: from, data: append([]byte(nil), b...)})
	d.mu.Unlock()
	d.cond.Broadcast()
	d.q.Wake()
	return 0
}

func (d *dgramQueue) SendTo(b []byte, to Addr) (int, linux.Errno) {
	return d.owner.routeDgram(d.local, b, to)
}

func (d *dgramQueue) RecvFrom(b []byte, nonblock bool) (int, Addr, linux.Errno) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.packets) == 0 {
		if d.closed {
			return 0, Addr{}, 0
		}
		if nonblock {
			return 0, Addr{}, linux.EAGAIN
		}
		d.cond.Wait()
	}
	pkt := d.packets[0]
	d.packets = d.packets[1:]
	n := copy(b, pkt.data) // excess datagram bytes are discarded, per UDP
	return n, pkt.from, 0
}

func (d *dgramQueue) Close() linux.Errno {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0
	}
	d.closed = true
	d.mu.Unlock()
	if d.owner != nil {
		d.owner.dropDgram(d)
	}
	d.cond.Broadcast()
	d.q.Wake()
	return 0
}

func (d *dgramQueue) Readiness() int16 {
	d.mu.Lock()
	defer d.mu.Unlock()
	ev := int16(linux.POLLOUT)
	if len(d.packets) > 0 || d.closed {
		ev |= linux.POLLIN
	}
	return ev
}

func (d *dgramQueue) Queue() *waitq.Queue { return &d.q }

func (d *dgramQueue) Buffered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.packets) == 0 {
		return 0
	}
	return len(d.packets[0].data)
}

func (d *dgramQueue) LocalAddr() Addr { return d.local }

package net

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block — the unit of fabric address
// assignment and routing. Each switch owns one or more local subnets
// (its nodes allocate addresses from them) and learns remote prefixes
// from bridge announcements.
type Prefix struct {
	IP   [4]byte
	Bits uint8
}

// ParseCIDR parses "10.0.1.0/24" (or a bare IP, treated as /32).
func ParseCIDR(s string) (Prefix, error) {
	ipStr, bitsStr, hasBits := strings.Cut(s, "/")
	var p Prefix
	ip, err := parseIP4(ipStr)
	if err != nil {
		return Prefix{}, fmt.Errorf("net: bad CIDR %q: %w", s, err)
	}
	p.IP = ip
	p.Bits = 32
	if hasBits {
		n, err := strconv.Atoi(bitsStr)
		if err != nil || n < 0 || n > 32 {
			return Prefix{}, fmt.Errorf("net: bad CIDR %q: prefix length", s)
		}
		p.Bits = uint8(n)
	}
	p.IP = u32ToIP(p.network())
	return p, nil
}

func parseIP4(s string) ([4]byte, error) {
	var b [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return b, fmt.Errorf("not a dotted quad: %q", s)
	}
	for i, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return b, fmt.Errorf("not a dotted quad: %q", s)
		}
		b[i] = byte(n)
	}
	return b, nil
}

func ipToU32(ip [4]byte) uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

func u32ToIP(v uint32) [4]byte {
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func ipString(ip [4]byte) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

func (p Prefix) mask() uint32 {
	if p.Bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

func (p Prefix) network() uint32 { return ipToU32(p.IP) & p.mask() }

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip [4]byte) bool {
	return ipToU32(ip)&p.mask() == p.network()
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", ipString(p.IP), p.Bits)
}

// route is one learned fabric route: a remote prefix reachable through
// a bridge link. hops orders competing announcements (fewest wins).
type route struct {
	prefix Prefix
	link   *bridgeLink
	hops   int
}

// prefixTable is the longest-prefix-match routing table. Entries are
// bucketed by prefix length and sorted by network address within each
// bucket, so a lookup is one binary search per populated length from
// /32 downward — O(L·log n) with L ≤ 33 populated lengths, following
// the DHT routing-scalability framing: lookup state grows with the
// number of prefixes, not the number of nodes, and lookup cost is
// logarithmic in table size instead of a flat per-node scan.
type prefixTable struct {
	byBits [33][]route
}

func (t *prefixTable) find(bucket []route, network uint32) int {
	return sort.Search(len(bucket), func(i int) bool {
		return bucket[i].prefix.network() >= network
	})
}

// lookup returns the most-specific route containing ip, or nil.
func (t *prefixTable) lookup(ip [4]byte) *route {
	v := ipToU32(ip)
	for bits := 32; bits >= 0; bits-- {
		bucket := t.byBits[bits]
		if len(bucket) == 0 {
			continue
		}
		network := v & Prefix{Bits: uint8(bits)}.mask()
		i := t.find(bucket, network)
		if i < len(bucket) && bucket[i].prefix.network() == network {
			return &bucket[i]
		}
	}
	return nil
}

// insert adds or improves a route; it reports whether the table
// changed (a changed route is re-announced to the other links). An
// existing entry is replaced when the new route is strictly fewer
// hops, or when it refreshes the same link (the link re-learned its
// own path; its word is authoritative for itself).
func (t *prefixTable) insert(r route) bool {
	bucket := t.byBits[r.prefix.Bits]
	i := t.find(bucket, r.prefix.network())
	if i < len(bucket) && bucket[i].prefix.network() == r.prefix.network() {
		cur := &bucket[i]
		if cur.link == r.link {
			if cur.hops == r.hops {
				return false
			}
			cur.hops = r.hops
			return true
		}
		if r.hops < cur.hops {
			*cur = r
			return true
		}
		return false
	}
	bucket = append(bucket, route{})
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = r
	t.byBits[r.prefix.Bits] = bucket
	return true
}

// dropLink removes every route learned through a dead link.
func (t *prefixTable) dropLink(l *bridgeLink) {
	for bits := range t.byBits {
		bucket := t.byBits[bits]
		kept := bucket[:0]
		for _, r := range bucket {
			if r.link != l {
				kept = append(kept, r)
			}
		}
		t.byBits[bits] = kept
	}
}

// all snapshots the table (announcement replay to a new link).
func (t *prefixTable) all() []route {
	var out []route
	for bits := 32; bits >= 0; bits-- {
		out = append(out, t.byBits[bits]...)
	}
	return out
}

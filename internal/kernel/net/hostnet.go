package net

import (
	gonet "net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gowali/internal/kernel/vfs"
	"gowali/internal/linux"
)

// HostNetConfig is the address-translation and admission policy of a
// HostNet backend. Nothing is reachable by default: a guest listener
// works only through an explicit bind mapping, and outbound connects
// only through the allowlist.
type HostNetConfig struct {
	// Binds maps a guest port to the host address the listener or
	// datagram socket actually binds — "127.0.0.1:18080", or a ":0"
	// suffix for a host-assigned port (query it with BoundAddr). A
	// guest `bind 0.0.0.0:8080; listen` becomes a real host listener
	// at Binds[8080].
	Binds map[uint16]string
	// Allow lists outbound dial patterns: "ip:port", "*:port",
	// "ip:*" or "*". An empty list denies all outbound traffic.
	Allow []string
	// DialTimeout bounds outbound connect attempts (default 5s).
	DialTimeout time.Duration
}

// HostNet passes guest sockets through to real host sockets via the
// Go net package. Each established stream runs two pump goroutines
// bridging the host connection to a pair of vfs.Pipes, which supply
// the guest-side nonblocking semantics, backpressure and wait-queue
// readiness; UDP uses a packet pump into a bounded queue.
type HostNet struct {
	cfg   HostNetConfig
	ephem atomic.Uint32

	mu        sync.Mutex
	bound     map[uint16]string        // guest port → resolved host address
	active    map[uint16]*hostListener // claimed guest listener ports
	listeners []*hostListener
	closed    bool
}

// NewHostNet builds a host-passthrough backend from cfg.
func NewHostNet(cfg HostNetConfig) *HostNet {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	return &HostNet{cfg: cfg, bound: make(map[uint16]string), active: make(map[uint16]*hostListener)}
}

func (h *HostNet) Name() string { return "host" }

// BoundAddr reports the real host address serving a guest port's
// listener ("" before listen) — how a host client finds a ":0" bind.
func (h *HostNet) BoundAddr(guestPort uint16) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bound[guestPort]
}

// BindAddr fills ephemeral guest ports; host-side claims happen at
// Listen/Dgram time.
func (h *HostNet) BindAddr(a Addr) (Addr, linux.Errno) {
	if a.Family == linux.AF_UNIX {
		return a, linux.EAFNOSUPPORT
	}
	if a.Port == 0 {
		a.Port = uint16(ephemeralBase + h.ephem.Add(1)%(65535-ephemeralBase))
	}
	return a, 0
}

// allowed matches dest ("d.d.d.d:port") against the outbound policy.
func (h *HostNet) allowed(a Addr) bool {
	ip := a.Addr
	ipStr := strconv.Itoa(int(ip[0])) + "." + strconv.Itoa(int(ip[1])) + "." +
		strconv.Itoa(int(ip[2])) + "." + strconv.Itoa(int(ip[3]))
	port := strconv.Itoa(int(a.Port))
	for _, pat := range h.cfg.Allow {
		if pat == "*" {
			return true
		}
		pip, pport, ok := strings.Cut(pat, ":")
		if !ok {
			continue
		}
		if (pip == "*" || pip == ipStr) && (pport == "*" || pport == port) {
			return true
		}
	}
	return false
}

func (h *HostNet) Listen(a Addr, backlog int) (Listener, linux.Errno) {
	if a.Family != linux.AF_INET {
		return nil, linux.EAFNOSUPPORT
	}
	hostAddr, ok := h.cfg.Binds[a.Port]
	if !ok {
		return nil, linux.EACCES // no mapping: policy denies the bind
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, linux.EINVAL
	}
	if _, used := h.active[a.Port]; used {
		h.mu.Unlock()
		return nil, linux.EADDRINUSE // the guest port is claimed even when the host side is ":0"
	}
	h.mu.Unlock()
	hl, err := gonet.Listen("tcp", hostAddr)
	if err != nil {
		return nil, errnoFromNet(err)
	}
	l := &hostListener{h: h, hl: hl, addr: a}
	l.init(backlog)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		hl.Close()
		return nil, linux.EINVAL
	}
	if _, used := h.active[a.Port]; used {
		h.mu.Unlock()
		hl.Close()
		return nil, linux.EADDRINUSE
	}
	h.active[a.Port] = l
	h.bound[a.Port] = hl.Addr().String()
	h.listeners = append(h.listeners, l)
	h.mu.Unlock()
	go l.acceptLoop()
	return l, 0
}

func (h *HostNet) Connect(a Addr, local Addr) (Conn, linux.Errno) {
	if a.Family != linux.AF_INET {
		return nil, linux.EAFNOSUPPORT
	}
	if !h.allowed(a) {
		return nil, linux.EACCES
	}
	c, err := gonet.DialTimeout("tcp", a.String(), h.cfg.DialTimeout)
	if err != nil {
		return nil, errnoFromNet(err)
	}
	return newHostConn(c, local, a), 0
}

func (h *HostNet) Dgram(a Addr) (DgramConn, linux.Errno) {
	if a.Family != linux.AF_INET {
		return nil, linux.EAFNOSUPPORT
	}
	hostAddr, mapped := h.cfg.Binds[a.Port]
	if !mapped {
		// Unmapped binds get an outbound-only host socket; inbound
		// reachability requires an explicit mapping.
		hostAddr = "127.0.0.1:0"
	}
	pc, err := gonet.ListenPacket("udp", hostAddr)
	if err != nil {
		return nil, errnoFromNet(err)
	}
	if mapped {
		h.mu.Lock()
		h.bound[a.Port] = pc.LocalAddr().String()
		h.mu.Unlock()
	}
	d := &hostDgram{h: h, pc: pc}
	d.dgramQueue.init(nil, a)
	go d.recvLoop()
	return d, 0
}

// Close shuts every active listener down (established connections keep
// their pumps until closed by either side).
func (h *HostNet) Close() {
	h.mu.Lock()
	ls := h.listeners
	h.listeners = nil
	h.closed = true
	h.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
}

// hostListener bridges a host TCP listener to the shared accept-queue
// state machine: a pump goroutine feeds real accepted connections in.
type hostListener struct {
	acceptQueue
	h    *HostNet
	hl   gonet.Listener
	addr Addr
}

func (l *hostListener) acceptLoop() {
	for {
		c, err := l.hl.Accept()
		if err != nil {
			l.Close()
			return
		}
		hc := newHostConn(c, l.addr, addrFromHost(c.RemoteAddr()))
		if errno := l.push(hc, hc.peer); errno != 0 {
			hc.Close()
		}
	}
}

func (l *hostListener) Close() linux.Errno {
	orphans := l.shutdown()
	l.h.mu.Lock()
	if l.h.active[l.addr.Port] == l {
		delete(l.h.active, l.addr.Port)
		// BoundAddr must stop advertising a dead host address.
		delete(l.h.bound, l.addr.Port)
	}
	for i, x := range l.h.listeners {
		if x == l {
			l.h.listeners = append(l.h.listeners[:i], l.h.listeners[i+1:]...)
			break
		}
	}
	l.h.mu.Unlock()
	l.hl.Close()
	for _, pc := range orphans {
		pc.c.Close()
	}
	return 0
}

// hostConn is one established host stream: the shared pipeConn
// guest-facing half, bridged to the host connection by two pump
// goroutines (rxPump host→rx pipe, txPump tx pipe→host). Pipe
// capacity supplies backpressure in both directions.
type hostConn struct {
	pipeConn
	c gonet.Conn
}

func newHostConn(c gonet.Conn, local, peer Addr) *hostConn {
	hc := &hostConn{c: c}
	hc.rx, hc.tx = vfs.NewPipe(), vfs.NewPipe()
	hc.local, hc.peer = local, peer
	// rx: pump writes, guest reads. tx: guest writes, pump reads.
	for _, p := range []*vfs.Pipe{hc.rx, hc.tx} {
		p.AddReader()
		p.AddWriter()
	}
	go hc.rxPump()
	go hc.txPump()
	return hc
}

func (hc *hostConn) rxPump() {
	buf := make([]byte, 32*1024)
	for {
		n, err := hc.c.Read(buf)
		if n > 0 {
			if _, werr := hc.rx.Write(buf[:n], false); werr != 0 {
				// Guest closed its read side: stop pulling host data.
				hc.c.Close()
				return
			}
		}
		if err != nil {
			hc.rx.CloseWriter() // guest sees EOF / POLLHUP
			return
		}
	}
}

func (hc *hostConn) txPump() {
	buf := make([]byte, 32*1024)
	for {
		n, errno := hc.tx.Read(buf, false)
		if n > 0 {
			if _, err := hc.c.Write(buf[:n]); err != nil {
				hc.tx.CloseReader() // guest writes turn into EPIPE
				return
			}
			continue
		}
		if errno == 0 { // EOF: guest closed its write side
			if t, ok := hc.c.(*gonet.TCPConn); ok {
				t.CloseWrite()
			}
			hc.mu.Lock()
			closed := hc.closed
			hc.mu.Unlock()
			if closed {
				hc.c.Close()
			}
			return
		}
	}
}

// Close overrides pipeConn's: a fully closed guest end also releases
// the host connection (after txPump drains any buffered bytes).
func (hc *hostConn) Close() linux.Errno {
	hc.mu.Lock()
	if hc.closed {
		hc.mu.Unlock()
		return 0
	}
	rdOpen, wrOpen := !hc.readShut, !hc.writeShut
	hc.closed = true
	hc.mu.Unlock()
	if rdOpen {
		hc.rx.CloseReader()
	}
	if wrOpen {
		hc.tx.CloseWriter() // txPump drains, half-closes, then fully closes
	} else {
		hc.c.Close()
	}
	return 0
}

// SetOpt overrides pipeConn's no-op with the options real TCP honors.
func (hc *hostConn) SetOpt(level, opt, val int32) {
	t, ok := hc.c.(*gonet.TCPConn)
	if !ok {
		return
	}
	switch {
	case level == linux.IPPROTO_TCP && opt == linux.TCP_NODELAY:
		t.SetNoDelay(val != 0)
	case level == linux.SOL_SOCKET && opt == linux.SO_KEEPALIVE:
		t.SetKeepAlive(val != 0)
	}
}

// hostDgram is a host UDP socket: the shared dgramQueue receive side
// fed by a packet pump, with sends going straight to the host socket
// under the outbound policy.
type hostDgram struct {
	dgramQueue
	h  *HostNet
	pc gonet.PacketConn
}

func (d *hostDgram) recvLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := d.pc.ReadFrom(buf)
		if n > 0 {
			d.enqueue(addrFromHost(from), buf[:n]) // ENOBUFS drops, per UDP
		}
		if err != nil {
			d.Close()
			return
		}
	}
}

func (d *hostDgram) SendTo(b []byte, to Addr) (int, linux.Errno) {
	if !d.h.allowed(to) {
		return 0, linux.EACCES
	}
	ua, err := gonet.ResolveUDPAddr("udp", to.String())
	if err != nil {
		return 0, linux.EINVAL
	}
	if _, err := d.pc.WriteTo(b, ua); err != nil {
		return 0, errnoFromNet(err)
	}
	return len(b), 0
}

func (d *hostDgram) Close() linux.Errno {
	d.dgramQueue.Close()
	d.pc.Close()
	return 0
}

// addrFromHost converts a host net.Addr into the guest address space
// (IPv4 only; anything else reports as 0.0.0.0).
func addrFromHost(a gonet.Addr) Addr {
	out := Addr{Family: linux.AF_INET}
	var ip gonet.IP
	var port int
	switch v := a.(type) {
	case *gonet.TCPAddr:
		ip, port = v.IP, v.Port
	case *gonet.UDPAddr:
		ip, port = v.IP, v.Port
	default:
		return out
	}
	if ip4 := ip.To4(); ip4 != nil {
		copy(out.Addr[:], ip4)
	}
	out.Port = uint16(port)
	return out
}

// errnoFromNet maps host dial/listen errors onto guest errnos.
func errnoFromNet(err error) linux.Errno {
	if err == nil {
		return 0
	}
	if ne, ok := err.(gonet.Error); ok && ne.Timeout() {
		return linux.ETIMEDOUT
	}
	s := err.Error()
	switch {
	case strings.Contains(s, "connection refused"):
		return linux.ECONNREFUSED
	case strings.Contains(s, "address already in use"):
		return linux.EADDRINUSE
	case strings.Contains(s, "permission denied"):
		return linux.EACCES
	case strings.Contains(s, "cannot assign requested address"):
		return linux.EADDRNOTAVAIL
	case strings.Contains(s, "network is unreachable"):
		return linux.ENETUNREACH
	case strings.Contains(s, "no route to host"):
		return linux.EHOSTUNREACH
	}
	return linux.ECONNREFUSED
}

// Package net is the kernel's pluggable network stack. The kernel owns
// sockets as files (descriptors, flags, SIGPIPE, poll integration); a
// net.Backend owns the address space and the transport behind them —
// the same split the VFS makes between path resolution and mountable
// filesystem backends.
//
// Three backends ship:
//
//   - Loopback (NewLoopback): the in-kernel address space. Every
//     address is local; this is the default and serves AF_UNIX always.
//   - Switch nodes (NewSwitch + Switch.Node): a virtual L4 switch
//     connecting multiple kernels in one process. Each kernel attaches
//     as a node with its own IPv4 address; guests on different kernels
//     exchange stream and datagram traffic through the shared fabric.
//   - HostNet (NewHostNet): passthrough to real host sockets via the
//     Go net package, governed by an explicit bind-map and outbound
//     allowlist, so a guest server becomes reachable from the host.
//
// Every operation is syscall-shaped (linux.Errno returns); blocking
// variants block the calling goroutine, and every waitable object
// exposes waitq queues so poll/select/epoll get event-driven wakeups
// instead of readiness sampling.
package net

import (
	"fmt"

	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// Addr is the kernel-native socket address (AF_INET or AF_UNIX).
type Addr struct {
	Family uint16
	Port   uint16  // AF_INET
	Addr   [4]byte // AF_INET
	Path   string  // AF_UNIX
}

// String formats the address for diagnostics.
func (a Addr) String() string {
	if a.Family == linux.AF_UNIX {
		return "unix:" + a.Path
	}
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.Addr[0], a.Addr[1], a.Addr[2], a.Addr[3], a.Port)
}

// IsWildcard reports an INADDR_ANY bind address.
func (a Addr) IsWildcard() bool { return a.Addr == [4]byte{} }

// IsLoopbackIP reports a 127.0.0.0/8 address.
func (a Addr) IsLoopbackIP() bool { return a.Addr[0] == 127 }

// Backend is a pluggable network stack implementation. The kernel
// routes AF_INET sockets to the configured backend and AF_UNIX sockets
// to its private loopback instance (unix addresses are per-machine
// filesystem names, like a network namespace). Implementations must be
// safe for concurrent use.
type Backend interface {
	// Name identifies the backend ("loopback", "switch", "host").
	Name() string
	// BindAddr validates and completes a bind request: ephemeral port
	// assignment, locality checks. It does not reserve the address;
	// Listen and Dgram claim it.
	BindAddr(a Addr) (Addr, linux.Errno)
	// Listen claims a stream address and returns its accept queue
	// (EADDRINUSE when taken).
	Listen(a Addr, backlog int) (Listener, linux.Errno)
	// Connect opens a stream connection to a. local is the caller's
	// bound address (zero when unbound) and becomes the peer address
	// the accepting side observes.
	Connect(a Addr, local Addr) (Conn, linux.Errno)
	// Dgram claims a datagram address and returns its packet queue.
	Dgram(a Addr) (DgramConn, linux.Errno)
	// Close releases backend-wide resources (host listeners, pumps).
	Close()
}

// Listener is a claimed stream address's accept queue.
type Listener interface {
	// Accept dequeues one established connection and the peer's
	// address; EAGAIN when nonblock and the queue is empty, EINVAL
	// once closed and drained.
	Accept(nonblock bool) (Conn, Addr, linux.Errno)
	Close() linux.Errno
	// Readiness returns poll bits (POLLIN when a connection waits).
	Readiness() int16
	// Queue wakes whenever a connection arrives or the listener closes.
	Queue() *waitq.Queue
}

// Conn is one established stream connection end.
type Conn interface {
	// Read delivers bytes; 0 with errno 0 is EOF.
	Read(b []byte, nonblock bool) (int, linux.Errno)
	// Write queues bytes toward the peer; EPIPE once the peer is gone.
	Write(b []byte, nonblock bool) (int, linux.Errno)
	// CloseRead/CloseWrite implement shutdown(2) halves.
	CloseRead()
	CloseWrite()
	Close() linux.Errno
	// Readiness returns poll bits for the connection.
	Readiness() int16
	// Queues returns every wait queue whose wakeup can change this
	// connection's readiness (rx and tx sides).
	Queues() []*waitq.Queue
	// Buffered reports receive-queue bytes (FIONREAD).
	Buffered() int
	// SetOpt applies a socket option where the transport supports it
	// (TCP_NODELAY on host sockets); otherwise a no-op.
	SetOpt(level, opt, val int32)
}

// DgramConn is a claimed datagram address's packet queue.
type DgramConn interface {
	SendTo(b []byte, to Addr) (int, linux.Errno)
	// RecvFrom dequeues one datagram; EAGAIN when nonblock and empty,
	// 0 bytes once closed.
	RecvFrom(b []byte, nonblock bool) (int, Addr, linux.Errno)
	Close() linux.Errno
	Readiness() int16
	Queue() *waitq.Queue
	Buffered() int
	LocalAddr() Addr
}

// maxDgramBacklog bounds a datagram socket's receive queue (ENOBUFS
// beyond it), matching the previous in-kernel loopback behavior.
const maxDgramBacklog = 1024

// ephemeralBase is where ephemeral port assignment starts scanning.
const ephemeralBase = 32768

package net

import (
	"fmt"
	"sync"

	"gowali/internal/linux"
)

// Switch is a virtual L4 switch: a shared address fabric that any
// number of kernels attach to as nodes. Streams and datagrams route by
// (node, port) for AF_INET and by path for AF_UNIX; wildcard and
// loopback destinations resolve to the sending node, and a node's own
// IPv4 address is reachable from every other node — so guests in
// different kernels exchange traffic entirely in-process.
//
// A single-node switch in wildcard mode is exactly the classic
// loopback network (see NewLoopback).
type Switch struct {
	mu       sync.Mutex
	streams  map[swKey]*swListener
	dgrams   map[swKey]*dgramQueue
	nodes    map[[4]byte]string // attached node IPs → node ids
	nextNode int
	ephem    uint16

	// single marks the degenerate loopback fabric: every address is
	// local to the one node, whatever IP it names.
	single bool
}

// swKey addresses one claimed socket: node scopes AF_INET ports; unix
// paths are fabric-global (the kernel keeps per-machine unix sockets
// on its own private loopback instance, so fabric-global unix names
// only arise when a switch node is used for AF_UNIX deliberately).
type swKey struct {
	node string
	port uint16
	path string
}

// NewSwitch builds an empty fabric; attach kernels with Node.
func NewSwitch() *Switch {
	return &Switch{
		streams: make(map[swKey]*swListener),
		dgrams:  make(map[swKey]*dgramQueue),
		nodes:   make(map[[4]byte]string),
	}
}

// NewLoopback returns the default in-kernel network: a private
// single-node switch where every address is local.
func NewLoopback() Backend {
	sw := NewSwitch()
	sw.single = true
	return &swNode{sw: sw, id: "lo", name: "loopback"}
}

// Node attaches a kernel to the fabric under the given IPv4 address
// ("10.0.0.1"). Guests on other nodes reach this node's listeners by
// dialing that address.
func (sw *Switch) Node(ip string) (Backend, error) {
	var b [4]byte
	if _, err := fmt.Sscanf(ip, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3]); err != nil {
		return nil, fmt.Errorf("net: bad switch node address %q", ip)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, taken := sw.nodes[b]; taken {
		return nil, fmt.Errorf("net: switch node %s already attached", ip)
	}
	sw.nextNode++
	id := fmt.Sprintf("n%d", sw.nextNode)
	sw.nodes[b] = id
	return &swNode{sw: sw, id: id, ip: b, name: "switch"}, nil
}

// swNode is one kernel's view of the fabric (a Backend).
type swNode struct {
	sw   *Switch
	id   string
	ip   [4]byte
	name string
}

func (n *swNode) Name() string { return n.name }

// localDest reports whether a names this node (wildcard, loopback or
// the node's own address).
func (n *swNode) localDest(a Addr) bool {
	return n.sw.single || a.IsWildcard() || a.IsLoopbackIP() || a.Addr == n.ip
}

// keyFor resolves a to its fabric key; bind restricts foreign
// addresses (you cannot bind another node's IP).
func (n *swNode) keyFor(a Addr, bind bool) (swKey, linux.Errno) {
	if a.Family == linux.AF_UNIX {
		if a.Path == "" {
			return swKey{}, linux.EINVAL
		}
		return swKey{path: a.Path}, 0
	}
	if n.localDest(a) {
		return swKey{node: n.id, port: a.Port}, 0
	}
	if bind {
		return swKey{}, linux.EADDRNOTAVAIL
	}
	n.sw.mu.Lock()
	id, ok := n.sw.nodes[a.Addr]
	n.sw.mu.Unlock()
	if !ok {
		return swKey{}, linux.ECONNREFUSED
	}
	return swKey{node: id, port: a.Port}, 0
}

// BindAddr fills in an ephemeral port for wildcard INET binds.
func (n *swNode) BindAddr(a Addr) (Addr, linux.Errno) {
	if a.Family == linux.AF_UNIX {
		if a.Path == "" {
			return a, linux.EINVAL
		}
		return a, 0
	}
	if !n.localDest(a) {
		return a, linux.EADDRNOTAVAIL
	}
	if a.Port != 0 {
		return a, 0
	}
	sw := n.sw
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for tries := 0; tries < 65536; tries++ {
		sw.ephem++
		port := ephemeralBase + sw.ephem%(65535-ephemeralBase)
		k := swKey{node: n.id, port: port}
		if _, used := sw.streams[k]; used {
			continue
		}
		if _, used := sw.dgrams[k]; used {
			continue
		}
		a.Port = port
		return a, 0
	}
	return a, linux.EADDRNOTAVAIL
}

func (n *swNode) Listen(a Addr, backlog int) (Listener, linux.Errno) {
	k, errno := n.keyFor(a, true)
	if errno != 0 {
		return nil, errno
	}
	l := &swListener{node: n, key: k, addr: a}
	l.init(backlog)
	sw := n.sw
	sw.mu.Lock()
	if _, used := sw.streams[k]; used {
		sw.mu.Unlock()
		return nil, linux.EADDRINUSE
	}
	sw.streams[k] = l
	sw.mu.Unlock()
	return l, 0
}

func (n *swNode) Connect(a Addr, local Addr) (Conn, linux.Errno) {
	k, errno := n.keyFor(a, false)
	if errno != 0 {
		return nil, errno
	}
	sw := n.sw
	sw.mu.Lock()
	l := sw.streams[k]
	sw.mu.Unlock()
	if l == nil {
		return nil, linux.ECONNREFUSED
	}
	// Cross-node traffic must carry a routable source address so the
	// accepting side's getpeername (and any reply) names the client's
	// node rather than a wildcard (unbound clients have a zero local).
	if local.Family != linux.AF_UNIX && !n.sw.single && (local.IsWildcard() || local.IsLoopbackIP()) {
		local.Family = linux.AF_INET
		local.Addr = n.ip
	}
	client, server := newConnPair(local, a)
	if errno := l.push(server, server.peer); errno != 0 {
		client.Close()
		return nil, errno
	}
	return client, 0
}

func (n *swNode) Dgram(a Addr) (DgramConn, linux.Errno) {
	k, errno := n.keyFor(a, true)
	if errno != 0 {
		return nil, errno
	}
	d := newDgramQueue(n, a)
	sw := n.sw
	sw.mu.Lock()
	if _, used := sw.dgrams[k]; used {
		sw.mu.Unlock()
		return nil, linux.EADDRINUSE
	}
	sw.dgrams[k] = d
	sw.mu.Unlock()
	return d, 0
}

// routeDgram delivers one datagram from a node-local source address.
func (n *swNode) routeDgram(from Addr, b []byte, to Addr) (int, linux.Errno) {
	k, errno := n.keyFor(to, false)
	if errno != 0 {
		return 0, errno
	}
	sw := n.sw
	sw.mu.Lock()
	d := sw.dgrams[k]
	sw.mu.Unlock()
	if d == nil {
		return 0, linux.ECONNREFUSED
	}
	if from.Family == linux.AF_INET && (from.IsWildcard() || from.IsLoopbackIP()) && !n.sw.single {
		from.Addr = n.ip
	}
	if errno := d.enqueue(from, b); errno != 0 {
		return 0, errno
	}
	return len(b), 0
}

// dropDgram removes a closed datagram socket from the fabric.
func (n *swNode) dropDgram(d *dgramQueue) {
	k, errno := n.keyFor(d.local, true)
	if errno != 0 {
		return
	}
	sw := n.sw
	sw.mu.Lock()
	if sw.dgrams[k] == d {
		delete(sw.dgrams, k)
	}
	sw.mu.Unlock()
}

func (n *swNode) Close() {}

// swListener is a claimed stream address's accept queue (the shared
// acceptQueue state machine plus fabric registration).
type swListener struct {
	acceptQueue
	node *swNode
	key  swKey
	addr Addr
}

func (l *swListener) Close() linux.Errno {
	orphans := l.shutdown()
	sw := l.node.sw
	sw.mu.Lock()
	if sw.streams[l.key] == l {
		delete(sw.streams, l.key)
	}
	sw.mu.Unlock()
	// Unaccepted connections are reset: their clients see EOF/EPIPE.
	for _, pc := range orphans {
		pc.c.Close()
	}
	return 0
}

package net

import (
	"fmt"
	gonet "net"
	"sync"

	"gowali/internal/linux"
	"gowali/internal/obs"
)

// Switch is a virtual L4 switch: a shared address fabric that any
// number of kernels attach to as nodes. Streams and datagrams route by
// (node, port) for AF_INET and by path for AF_UNIX; wildcard and
// loopback destinations resolve to the sending node, and a node's own
// IPv4 address is reachable from every other node — so guests in
// different kernels exchange traffic entirely in-process.
//
// Switches additionally bridge into a distributed fabric: BridgeListen
// and BridgeDial trunk frames over real TCP links to switches in other
// processes or on other hosts. Each switch owns local subnets
// (SetSubnets + AllocNode assign node addresses from them) and learns
// remote prefixes from link announcements into a longest-prefix-match
// routing table; destinations that resolve to no in-process node route
// through the matching trunk, relaying across intermediate switches
// when the fabric is not fully meshed.
//
// A single-node switch in wildcard mode is exactly the classic
// loopback network (see NewLoopback).
type Switch struct {
	mu       sync.Mutex
	streams  map[swKey]*swListener
	dgrams   map[swKey]*dgramQueue
	nodes    map[[4]byte]string // attached node IPs → node ids
	nextNode int
	ephem    uint16

	subnets []Prefix      // local address plan, announced over trunks
	routes  prefixTable   // learned remote prefixes → links
	links   []*bridgeLink // attached trunk links
	servers []*BridgeServer

	// single marks the degenerate loopback fabric: every address is
	// local to the one node, whatever IP it names.
	single bool

	// trace/metrics are the observability plane new trunk links resolve
	// their instruments from (see obs.go). Set before bridging.
	trace   *obs.Tracer
	metrics *obs.Registry
}

// swKey addresses one claimed socket: node scopes AF_INET ports; unix
// paths are fabric-global (the kernel keeps per-machine unix sockets
// on its own private loopback instance, so fabric-global unix names
// only arise when a switch node is used for AF_UNIX deliberately).
type swKey struct {
	node string
	port uint16
	path string
}

// NewSwitch builds an empty fabric; attach kernels with Node.
func NewSwitch() *Switch {
	return &Switch{
		streams: make(map[swKey]*swListener),
		dgrams:  make(map[swKey]*dgramQueue),
		nodes:   make(map[[4]byte]string),
	}
}

// NewLoopback returns the default in-kernel network: a private
// single-node switch where every address is local.
func NewLoopback() Backend {
	sw := NewSwitch()
	sw.single = true
	return &swNode{sw: sw, id: "lo", name: "loopback"}
}

// SetSubnets declares the switch's local address plan: CIDR blocks
// ("10.0.1.0/24") that AllocNode assigns from and that bridge links
// announce to the rest of the fabric. Declare subnets before bridging
// so the first announcement already covers them.
func (sw *Switch) SetSubnets(cidrs ...string) error {
	var ps []Prefix
	for _, c := range cidrs {
		p, err := ParseCIDR(c)
		if err != nil {
			return err
		}
		ps = append(ps, p)
	}
	sw.mu.Lock()
	sw.subnets = append(sw.subnets, ps...)
	links := append([]*bridgeLink(nil), sw.links...)
	sw.mu.Unlock()
	for _, p := range ps {
		for _, l := range links {
			l.send(frameAnnounce(p, 0))
		}
	}
	return nil
}

// Node attaches a kernel to the fabric under the given IPv4 address
// ("10.0.0.1"). Guests on other nodes reach this node's listeners by
// dialing that address.
func (sw *Switch) Node(ip string) (Backend, error) {
	b, err := parseIP4(ip)
	if err != nil {
		return nil, fmt.Errorf("net: bad switch node address %q", ip)
	}
	return sw.attachNode(b)
}

// AllocNode attaches a kernel under the next free address of the
// switch's local subnets (collision-free assignment; addresses
// released by a node's Close are reused). It returns the backend and
// the assigned address.
func (sw *Switch) AllocNode() (Backend, string, error) {
	sw.mu.Lock()
	subnets := append([]Prefix(nil), sw.subnets...)
	sw.mu.Unlock()
	if len(subnets) == 0 {
		return nil, "", fmt.Errorf("net: AllocNode needs a local subnet (SetSubnets)")
	}
	for _, p := range subnets {
		base := p.network()
		hosts := uint32(1) << (32 - p.Bits)
		// Skip the network and broadcast addresses of real-sized
		// subnets; /31 and /32 have no hosts to allocate.
		for off := uint32(1); off+1 < hosts; off++ {
			ip := u32ToIP(base + off)
			n, err := sw.attachNode(ip)
			if err == nil {
				return n, ipString(ip), nil
			}
		}
	}
	return nil, "", fmt.Errorf("net: switch subnets exhausted")
}

func (sw *Switch) attachNode(b [4]byte) (Backend, error) {
	sw.mu.Lock()
	if _, taken := sw.nodes[b]; taken {
		sw.mu.Unlock()
		return nil, fmt.Errorf("net: switch node %s already attached", ipString(b))
	}
	sw.nextNode++
	id := fmt.Sprintf("n%d", sw.nextNode)
	sw.nodes[b] = id
	covered := false
	for _, p := range sw.subnets {
		if p.Contains(b) {
			covered = true
			break
		}
	}
	links := append([]*bridgeLink(nil), sw.links...)
	sw.mu.Unlock()
	// A node outside every local subnet still needs fabric
	// reachability: announce it as a host route.
	if !covered {
		for _, l := range links {
			l.send(frameAnnounce(Prefix{IP: b, Bits: 32}, 0))
		}
	}
	return &swNode{sw: sw, id: id, ip: b, name: "switch"}, nil
}

// swNode is one kernel's view of the fabric (a Backend).
type swNode struct {
	sw   *Switch
	id   string
	ip   [4]byte
	name string
}

func (n *swNode) Name() string { return n.name }

// localDest reports whether a names this node (wildcard, loopback or
// the node's own address).
func (n *swNode) localDest(a Addr) bool {
	return n.sw.single || a.IsWildcard() || a.IsLoopbackIP() || a.Addr == n.ip
}

// keyFor resolves a to its fabric key; bind restricts foreign
// addresses (you cannot bind another node's IP).
func (n *swNode) keyFor(a Addr, bind bool) (swKey, linux.Errno) {
	if a.Family == linux.AF_UNIX {
		if a.Path == "" {
			return swKey{}, linux.EINVAL
		}
		return swKey{path: a.Path}, 0
	}
	if n.localDest(a) {
		return swKey{node: n.id, port: a.Port}, 0
	}
	if bind {
		return swKey{}, linux.EADDRNOTAVAIL
	}
	n.sw.mu.Lock()
	id, ok := n.sw.nodes[a.Addr]
	n.sw.mu.Unlock()
	if !ok {
		return swKey{}, linux.ECONNREFUSED
	}
	return swKey{node: id, port: a.Port}, 0
}

// BindAddr fills in an ephemeral port for wildcard INET binds.
func (n *swNode) BindAddr(a Addr) (Addr, linux.Errno) {
	if a.Family == linux.AF_UNIX {
		if a.Path == "" {
			return a, linux.EINVAL
		}
		return a, 0
	}
	if !n.localDest(a) {
		return a, linux.EADDRNOTAVAIL
	}
	if a.Port != 0 {
		return a, 0
	}
	sw := n.sw
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for tries := 0; tries < 65536; tries++ {
		sw.ephem++
		port := ephemeralBase + sw.ephem%(65535-ephemeralBase)
		k := swKey{node: n.id, port: port}
		if _, used := sw.streams[k]; used {
			continue
		}
		if _, used := sw.dgrams[k]; used {
			continue
		}
		a.Port = port
		return a, 0
	}
	return a, linux.EADDRNOTAVAIL
}

func (n *swNode) Listen(a Addr, backlog int) (Listener, linux.Errno) {
	k, errno := n.keyFor(a, true)
	if errno != 0 {
		return nil, errno
	}
	l := &swListener{node: n, key: k, addr: a}
	l.init(backlog)
	sw := n.sw
	sw.mu.Lock()
	if _, used := sw.streams[k]; used {
		sw.mu.Unlock()
		return nil, linux.EADDRINUSE
	}
	sw.streams[k] = l
	sw.mu.Unlock()
	return l, 0
}

func (n *swNode) Connect(a Addr, local Addr) (Conn, linux.Errno) {
	// Cross-node traffic must carry a routable source address so the
	// accepting side's getpeername (and any reply) names the client's
	// node rather than a wildcard (unbound clients have a zero local)
	// — and so replies across a bridge hop route back here.
	if a.Family != linux.AF_UNIX && !n.sw.single && (local.IsWildcard() || local.IsLoopbackIP()) {
		local.Family = linux.AF_INET
		local.Addr = n.ip
	}
	k, errno := n.keyFor(a, false)
	if errno == linux.ECONNREFUSED && a.Family == linux.AF_INET {
		// Not an in-process node: try the fabric routing table.
		if bl := n.sw.linkFor(a.Addr); bl != nil {
			return bl.open(a, local, n.id)
		}
		return nil, linux.ECONNREFUSED
	}
	if errno != 0 {
		return nil, errno
	}
	sw := n.sw
	sw.mu.Lock()
	l := sw.streams[k]
	sw.mu.Unlock()
	if l == nil {
		return nil, linux.ECONNREFUSED
	}
	client, server := newConnPair(local, a)
	if errno := l.push(server, server.peer); errno != 0 {
		client.Close()
		return nil, errno
	}
	return client, 0
}

func (n *swNode) Dgram(a Addr) (DgramConn, linux.Errno) {
	k, errno := n.keyFor(a, true)
	if errno != 0 {
		return nil, errno
	}
	d := newDgramQueue(n, a)
	sw := n.sw
	sw.mu.Lock()
	if _, used := sw.dgrams[k]; used {
		sw.mu.Unlock()
		return nil, linux.EADDRINUSE
	}
	sw.dgrams[k] = d
	sw.mu.Unlock()
	return d, 0
}

// routeDgram delivers one datagram from a node-local source address.
func (n *swNode) routeDgram(from Addr, b []byte, to Addr) (int, linux.Errno) {
	if from.Family == linux.AF_INET && (from.IsWildcard() || from.IsLoopbackIP()) && !n.sw.single {
		from.Family = linux.AF_INET
		from.Addr = n.ip
	}
	k, errno := n.keyFor(to, false)
	if errno == linux.ECONNREFUSED && to.Family == linux.AF_INET {
		// Not an in-process node: one DGRAM frame through the fabric.
		// Fire-and-forget, like UDP — the receiving queue drops on
		// overflow and unknown destinations vanish silently.
		if bl := n.sw.linkFor(to.Addr); bl != nil {
			bl.send(frameDgram(from, to, b))
			return len(b), 0
		}
		return 0, linux.ECONNREFUSED
	}
	if errno != 0 {
		return 0, errno
	}
	sw := n.sw
	sw.mu.Lock()
	d := sw.dgrams[k]
	sw.mu.Unlock()
	if d == nil {
		return 0, linux.ECONNREFUSED
	}
	if errno := d.enqueue(from, b); errno != 0 {
		return 0, errno
	}
	return len(b), 0
}

// dropDgram removes a closed datagram socket from the fabric.
func (n *swNode) dropDgram(d *dgramQueue) {
	k, errno := n.keyFor(d.local, true)
	if errno != 0 {
		return
	}
	sw := n.sw
	sw.mu.Lock()
	if sw.dgrams[k] == d {
		delete(sw.dgrams, k)
	}
	sw.mu.Unlock()
}

// Close detaches the node from the fabric: its listeners and datagram
// queues shut down (blocked accepts and receives wake), its bridged
// streams reset so remote peers observe the teardown, and its IP
// returns to the switch for reuse. Established in-process pipe pairs
// are owned by kernel fd tables and close with them.
func (n *swNode) Close() {
	sw := n.sw
	sw.mu.Lock()
	var ls []*swListener
	for _, l := range sw.streams {
		if l.node == n {
			ls = append(ls, l)
		}
	}
	var ds []*dgramQueue
	for _, d := range sw.dgrams {
		if d.owner == n {
			ds = append(ds, d)
		}
	}
	// Release the IP only if it is still ours (it may have been
	// reassigned after an earlier Close).
	if sw.nodes[n.ip] == n.id {
		delete(sw.nodes, n.ip)
	}
	links := append([]*bridgeLink(nil), sw.links...)
	sw.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, d := range ds {
		d.Close()
	}
	for _, bl := range links {
		bl.resetNode(n.id)
	}
}

// --- fabric plumbing -------------------------------------------------

// BridgeListen opens a trunk endpoint at addr ("host:port", ":0" for
// an ephemeral port — query it with Addr). Remote switches join the
// fabric by dialing it.
func (sw *Switch) BridgeListen(addr string) (*BridgeServer, error) {
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	bs := &BridgeServer{sw: sw, ln: ln}
	sw.mu.Lock()
	sw.servers = append(sw.servers, bs)
	sw.mu.Unlock()
	go bs.acceptLoop()
	return bs, nil
}

// BridgeDial joins the fabric through a remote switch's BridgeListen
// endpoint. Subnet announcements flow both ways immediately; routes
// to switches beyond the peer arrive as the fabric re-announces.
func (sw *Switch) BridgeDial(addr string) (*Bridge, error) {
	c, err := gonet.DialTimeout("tcp", addr, bridgeOpenTimeout)
	if err != nil {
		return nil, err
	}
	return &Bridge{link: sw.startLink(c, true)}, nil
}

// startLink attaches one trunk: register it, exchange hello and the
// current announcement set, then start the demux loop.
func (sw *Switch) startLink(c gonet.Conn, dialer bool) *bridgeLink {
	if tc, ok := c.(*gonet.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	l := newBridgeLink(sw, c, dialer)
	sw.mu.Lock()
	sw.links = append(sw.links, l)
	locals := sw.localPrefixesLocked()
	learned := sw.routes.all()
	sw.mu.Unlock()
	l.send(frameHello())
	for _, p := range locals {
		l.send(frameAnnounce(p, 0))
	}
	for _, r := range learned {
		l.send(frameAnnounce(r.prefix, r.hops+1))
	}
	go l.run()
	return l
}

// localPrefixesLocked reports everything this switch answers for:
// its subnets plus host routes for nodes outside them.
func (sw *Switch) localPrefixesLocked() []Prefix {
	out := append([]Prefix(nil), sw.subnets...)
	for ip := range sw.nodes {
		covered := false
		for _, p := range sw.subnets {
			if p.Contains(ip) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, Prefix{IP: ip, Bits: 32})
		}
	}
	return out
}

// linkFor resolves a non-local destination through the routing table.
func (sw *Switch) linkFor(ip [4]byte) *bridgeLink {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if r := sw.routes.lookup(ip); r != nil {
		return r.link
	}
	return nil
}

// learnRoute absorbs one announcement; improvements re-announce to
// the other links with one more hop (split horizon keeps them off the
// link they came from).
func (sw *Switch) learnRoute(p Prefix, hops int, via *bridgeLink) {
	sw.mu.Lock()
	for _, local := range sw.localPrefixesLocked() {
		if local == p {
			sw.mu.Unlock()
			return // our own prefix echoed back: ignore
		}
	}
	changed := sw.routes.insert(route{prefix: p, link: via, hops: hops})
	var others []*bridgeLink
	if changed {
		for _, l := range sw.links {
			if l != via {
				others = append(others, l)
			}
		}
	}
	sw.mu.Unlock()
	for _, l := range others {
		l.send(frameAnnounce(p, hops+1))
	}
}

// detachLink forgets a dead trunk and the routes learned through it.
func (sw *Switch) detachLink(l *bridgeLink) {
	sw.mu.Lock()
	for i, x := range sw.links {
		if x == l {
			sw.links = append(sw.links[:i], sw.links[i+1:]...)
			break
		}
	}
	sw.routes.dropLink(l)
	sw.mu.Unlock()
}

func (sw *Switch) dropServer(bs *BridgeServer) {
	sw.mu.Lock()
	for i, x := range sw.servers {
		if x == bs {
			sw.servers = append(sw.servers[:i], sw.servers[i+1:]...)
			break
		}
	}
	sw.mu.Unlock()
}

// RouteCount reports learned remote prefixes (diagnostics, tests).
func (sw *Switch) RouteCount() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.routes.all())
}

// Close tears the fabric side of the switch down: trunk servers stop
// accepting and every link resets (in-process nodes keep working).
func (sw *Switch) Close() {
	sw.mu.Lock()
	servers := sw.servers
	links := append([]*bridgeLink(nil), sw.links...)
	sw.servers = nil
	sw.mu.Unlock()
	for _, bs := range servers {
		bs.ln.Close()
	}
	for _, l := range links {
		l.c.Close() // the demux loop observes the close and tears down
	}
}

// swListener is a claimed stream address's accept queue (the shared
// acceptQueue state machine plus fabric registration).
type swListener struct {
	acceptQueue
	node *swNode
	key  swKey
	addr Addr
}

func (l *swListener) Close() linux.Errno {
	orphans := l.shutdown()
	sw := l.node.sw
	sw.mu.Lock()
	if sw.streams[l.key] == l {
		delete(sw.streams, l.key)
	}
	sw.mu.Unlock()
	// Unaccepted connections are reset: their clients see EOF/EPIPE.
	for _, pc := range orphans {
		pc.c.Close()
	}
	return 0
}

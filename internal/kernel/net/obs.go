package net

import (
	"fmt"

	"gowali/internal/obs"
)

// Observability for the distributed switch fabric. Each trunk link
// carries one pre-resolved instrument set (linkObs) so the frame paths
// never format metric names; a nil linkObs pointer is the disabled
// plane and costs one predictable branch per frame. Only trunk links
// are instrumented — HostNet proxies real host sockets and the
// in-process switch delivers by direct queue handoff, so the frames
// worth watching are exactly the ones crossing a TCP trunk.
//
// SetObs must be called before bridging: links resolve their
// instruments at creation and never re-read the switch's plane, so the
// demux goroutine needs no synchronization to use them.

// SetObs attaches the observability plane to the switch. Affects links
// created afterwards.
func (sw *Switch) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	sw.mu.Lock()
	sw.trace = tr
	sw.metrics = reg
	sw.mu.Unlock()
}

// SetObs on a loopback/switch node forwards to the owning switch; the
// kernel reaches it through an optional interface on its Backend.
func (n *swNode) SetObs(tr *obs.Tracer, reg *obs.Registry) { n.sw.SetObs(tr, reg) }

// linkObs is one trunk link's instrument set, immutable after link
// creation.
type linkObs struct {
	tr                 *obs.Tracer
	name               string
	txFrames, rxFrames *obs.Counter
	txBytes, rxBytes   *obs.Counter
	stall              *obs.Histogram
}

// linkObsFor resolves the instrument set for a new link, labeled by
// the trunk's remote address. Nil when no plane is attached.
func (sw *Switch) linkObsFor(name string) *linkObs {
	sw.mu.Lock()
	tr, reg := sw.trace, sw.metrics
	sw.mu.Unlock()
	if tr == nil && reg == nil {
		return nil
	}
	lbl := fmt.Sprintf("{link=%q}", name)
	return &linkObs{
		tr:       tr,
		name:     name,
		txFrames: reg.Counter("wali_net_tx_frames_total" + lbl),
		rxFrames: reg.Counter("wali_net_rx_frames_total" + lbl),
		txBytes:  reg.Counter("wali_net_tx_bytes_total" + lbl),
		rxBytes:  reg.Counter("wali_net_rx_bytes_total" + lbl),
		stall:    reg.Histogram("wali_net_stall_ns" + lbl),
	}
}

// observeTx records one sent frame (type byte at frame[4], after the
// 4-byte length prefix).
func (o *linkObs) observeTx(frame []byte) {
	o.txFrames.Add(1)
	o.txBytes.Add(int64(len(frame)))
	if o.tr.Enabled() {
		o.tr.Emit(obs.Event{
			Kind: obs.EvNetFrameTx, Name: o.name,
			Arg1: int64(len(frame)), Arg2: int64(frame[4]),
		})
	}
}

// observeRx records one received frame.
func (o *linkObs) observeRx(typ byte, wireLen int) {
	o.rxFrames.Add(1)
	o.rxBytes.Add(int64(wireLen))
	if o.tr.Enabled() {
		o.tr.Emit(obs.Event{
			Kind: obs.EvNetFrameRx, Name: o.name,
			Arg1: int64(wireLen), Arg2: int64(typ),
		})
	}
}

package net

import (
	"strings"
	"testing"

	"gowali/internal/linux"
	"gowali/internal/obs"
)

// TestBridgeObsCounters attaches the obs plane to both switches of a
// bridged fabric before the trunk comes up (links resolve their
// instruments at creation) and verifies a cross-trunk exchange is
// visible in it: frames and bytes counted in both directions on both
// ends, and net-category trace events recorded.
func TestBridgeObsCounters(t *testing.T) {
	tr := obs.NewTracer(1 << 8)
	tr.SetEnabled(true)
	reg := obs.NewRegistry()

	swA, swB := NewSwitch(), NewSwitch()
	swA.SetObs(tr, reg)
	swB.SetObs(tr, reg)
	if err := swA.SetSubnets("10.21.1.0/24"); err != nil {
		t.Fatal(err)
	}
	if err := swB.SetSubnets("10.21.2.0/24"); err != nil {
		t.Fatal(err)
	}
	bs, err := swA.BridgeListen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodeA, nodeB := allocNode(t, swA), allocNode(t, swB)
	if _, err := swB.BridgeDial(bs.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { swA.Close(); swB.Close() })
	waitRoutes(t, swA, 1)
	waitRoutes(t, swB, 1)

	l, errno := nodeA.Listen(Addr{Family: linux.AF_INET, Port: 9393}, 8)
	if errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	defer l.Close()
	cli, errno := nodeB.Connect(inet("10.21.1.1", 9393), Addr{})
	if errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	srv, _, errno := l.Accept(false)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	payload := []byte("observed across the trunk")
	if _, errno := cli.Write(payload, false); errno != 0 {
		t.Fatalf("write: %v", errno)
	}
	buf := make([]byte, 64)
	if n, errno := srv.Read(buf, false); errno != 0 || n != len(payload) {
		t.Fatalf("read: n=%d %v", n, errno)
	}
	srv.Close()
	cli.Close()

	// Both trunk ends counted frames and bytes in both directions.
	s := reg.Snapshot()
	sum := func(prefix string) (total int64, links int) {
		for name, v := range s.Counters {
			if strings.HasPrefix(name, prefix) {
				total += v
				links++
			}
		}
		return
	}
	if total, links := sum("wali_net_tx_frames_total{"); total < 2 || links < 2 {
		t.Fatalf("tx frames: total=%d across %d links, want >=2 on >=2 links", total, links)
	}
	if total, links := sum("wali_net_rx_frames_total{"); total < 2 || links < 2 {
		t.Fatalf("rx frames: total=%d across %d links, want >=2 on >=2 links", total, links)
	}
	if total, _ := sum("wali_net_tx_bytes_total{"); total < int64(len(payload)) {
		t.Fatalf("tx bytes = %d, want >= %d", total, len(payload))
	}

	// And the tracer holds net-category events for the same traffic.
	var tx, rx int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case obs.EvNetFrameTx:
			tx++
		case obs.EvNetFrameRx:
			rx++
		}
	}
	if tx == 0 || rx == 0 {
		t.Fatalf("trace events: tx=%d rx=%d, want both > 0", tx, rx)
	}
}

package net

import (
	"encoding/binary"
	"fmt"
	"io"

	"gowali/internal/linux"
)

// The bridge trunk protocol: length-prefixed frames over one TCP
// connection between two switches. Every frame is
//
//	uint32 length (big-endian, counts the bytes after itself)
//	uint8  type
//	...    body
//
// Stream frames carry a per-link stream id allocated by the opener
// (dialer side odd, acceptor side even, so concurrent opens never
// collide). Flow control is credit-based: DATA consumes sender credit,
// WINDOW returns it, so a stream can never buffer more than
// bridgeWindow bytes beyond the guest-side pipes — the trunk's
// backpressure bound.
const (
	frHello    = 1  // magic u32, version u8
	frAnnounce = 2  // prefix ip4, bits u8, hops u8
	frOpen     = 3  // id u32, dst addr6, src addr6
	frAccept   = 4  // id u32
	frRefuse   = 5  // id u32, errno u32
	frData     = 6  // id u32, payload
	frWindow   = 7  // id u32, credit u32
	frShut     = 8  // id u32 (sender finished writing: FIN)
	frReset    = 9  // id u32 (abort both directions: RST)
	frDgram    = 10 // src addr6, dst addr6, payload
)

const (
	bridgeMagic   = 0x47574642 // "GWFB"
	bridgeVersion = 1

	// maxFrameBody bounds one frame's decoded body; anything larger is
	// a protocol violation and tears the link down.
	maxFrameBody = 128 * 1024

	// bridgeChunk is the largest DATA payload one frame carries.
	bridgeChunk = 32 * 1024

	// bridgeWindow is the initial (and maximum outstanding) per-stream
	// credit in bytes: the receive-side inbox can never hold more.
	bridgeWindow = 128 * 1024

	// maxAnnounceHops drops routing loops that split horizon missed.
	maxAnnounceHops = 16
)

// readFrame reads one length-prefixed frame; the body is freshly
// allocated (frames outlive the read buffer: inboxes, relays).
func readFrame(r io.Reader) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("net: bridge frame with empty body")
	}
	if n > maxFrameBody+1 {
		return 0, nil, fmt.Errorf("net: bridge frame of %d bytes exceeds the %d-byte cap", n, maxFrameBody)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("net: truncated bridge frame: %w", err)
	}
	return buf[0], buf[1:], nil
}

// newFrame starts a frame of the given type with room for body bytes;
// finishFrame backpatches the length prefix.
func newFrame(typ byte, body int) []byte {
	b := make([]byte, 5, 5+body)
	b[4] = typ
	return b
}

func finishFrame(b []byte) []byte {
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b
}

// appendAddr encodes an AF_INET address as 6 bytes (ip4 + port). The
// trunk carries AF_INET only; unix sockets stay machine-local.
func appendAddr(b []byte, a Addr) []byte {
	b = append(b, a.Addr[0], a.Addr[1], a.Addr[2], a.Addr[3])
	return append(b, byte(a.Port>>8), byte(a.Port))
}

func parseAddr(b []byte) (Addr, []byte, error) {
	if len(b) < 6 {
		return Addr{}, nil, fmt.Errorf("net: short bridge address")
	}
	a := Addr{Family: linux.AF_INET}
	copy(a.Addr[:], b[:4])
	a.Port = uint16(b[4])<<8 | uint16(b[5])
	return a, b[6:], nil
}

func frameHello() []byte {
	b := newFrame(frHello, 5)
	b = binary.BigEndian.AppendUint32(b, bridgeMagic)
	b = append(b, bridgeVersion)
	return finishFrame(b)
}

func parseHello(body []byte) error {
	if len(body) < 5 {
		return fmt.Errorf("net: short bridge hello")
	}
	if m := binary.BigEndian.Uint32(body[:4]); m != bridgeMagic {
		return fmt.Errorf("net: bridge hello magic %#x (want %#x)", m, bridgeMagic)
	}
	if body[4] != bridgeVersion {
		return fmt.Errorf("net: bridge protocol version %d (want %d)", body[4], bridgeVersion)
	}
	return nil
}

func frameAnnounce(p Prefix, hops int) []byte {
	b := newFrame(frAnnounce, 6)
	b = append(b, p.IP[0], p.IP[1], p.IP[2], p.IP[3], p.Bits, byte(hops))
	return finishFrame(b)
}

func parseAnnounce(body []byte) (Prefix, int, error) {
	if len(body) < 6 {
		return Prefix{}, 0, fmt.Errorf("net: short bridge announce")
	}
	p := Prefix{IP: [4]byte{body[0], body[1], body[2], body[3]}, Bits: body[4]}
	if p.Bits > 32 {
		return Prefix{}, 0, fmt.Errorf("net: bridge announce with /%d prefix", p.Bits)
	}
	return p, int(body[5]), nil
}

func frameOpen(id uint32, dst, src Addr) []byte {
	b := newFrame(frOpen, 16)
	b = binary.BigEndian.AppendUint32(b, id)
	b = appendAddr(b, dst)
	b = appendAddr(b, src)
	return finishFrame(b)
}

func parseOpen(body []byte) (id uint32, dst, src Addr, err error) {
	if len(body) < 4 {
		return 0, Addr{}, Addr{}, fmt.Errorf("net: short bridge open")
	}
	id = binary.BigEndian.Uint32(body[:4])
	rest := body[4:]
	if dst, rest, err = parseAddr(rest); err != nil {
		return 0, Addr{}, Addr{}, err
	}
	if src, _, err = parseAddr(rest); err != nil {
		return 0, Addr{}, Addr{}, err
	}
	return id, dst, src, nil
}

// frameStreamCtl covers the id-only frames (ACCEPT, SHUT, RESET).
func frameStreamCtl(typ byte, id uint32) []byte {
	b := newFrame(typ, 4)
	b = binary.BigEndian.AppendUint32(b, id)
	return finishFrame(b)
}

func parseStreamID(body []byte) (uint32, []byte, error) {
	if len(body) < 4 {
		return 0, nil, fmt.Errorf("net: short bridge stream frame")
	}
	return binary.BigEndian.Uint32(body[:4]), body[4:], nil
}

func frameRefuse(id uint32, errno linux.Errno) []byte {
	b := newFrame(frRefuse, 8)
	b = binary.BigEndian.AppendUint32(b, id)
	b = binary.BigEndian.AppendUint32(b, uint32(errno))
	return finishFrame(b)
}

func parseRefuse(body []byte) (uint32, linux.Errno, error) {
	id, rest, err := parseStreamID(body)
	if err != nil || len(rest) < 4 {
		return 0, 0, fmt.Errorf("net: short bridge refuse")
	}
	errno := linux.Errno(binary.BigEndian.Uint32(rest[:4]))
	if errno == 0 {
		errno = linux.ECONNREFUSED
	}
	return id, errno, nil
}

func frameData(id uint32, payload []byte) []byte {
	b := newFrame(frData, 4+len(payload))
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, payload...)
	return finishFrame(b)
}

func frameWindow(id uint32, credit uint32) []byte {
	b := newFrame(frWindow, 8)
	b = binary.BigEndian.AppendUint32(b, id)
	b = binary.BigEndian.AppendUint32(b, credit)
	return finishFrame(b)
}

func parseWindow(body []byte) (uint32, int, error) {
	id, rest, err := parseStreamID(body)
	if err != nil || len(rest) < 4 {
		return 0, 0, fmt.Errorf("net: short bridge window")
	}
	credit := binary.BigEndian.Uint32(rest[:4])
	if credit > bridgeWindow {
		return 0, 0, fmt.Errorf("net: bridge window grant of %d exceeds the %d-byte window", credit, bridgeWindow)
	}
	return id, int(credit), nil
}

func frameDgram(src, dst Addr, payload []byte) []byte {
	b := newFrame(frDgram, 12+len(payload))
	b = appendAddr(b, src)
	b = appendAddr(b, dst)
	b = append(b, payload...)
	return finishFrame(b)
}

func parseDgram(body []byte) (src, dst Addr, payload []byte, err error) {
	rest := body
	if src, rest, err = parseAddr(rest); err != nil {
		return Addr{}, Addr{}, nil, err
	}
	if dst, rest, err = parseAddr(rest); err != nil {
		return Addr{}, Addr{}, nil, err
	}
	return src, dst, rest, nil
}

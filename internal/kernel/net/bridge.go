package net

import (
	"bufio"
	gonet "net"
	"sync"
	"time"

	"gowali/internal/kernel/vfs"
	"gowali/internal/linux"
	"gowali/internal/obs"
)

// bridgeOpenTimeout bounds a blocking cross-fabric connect.
const bridgeOpenTimeout = 10 * time.Second

// BridgeServer accepts trunk links from remote switches: the listen
// side of Switch.BridgeListen. Each accepted TCP connection becomes
// one bridgeLink attached to the switch.
type BridgeServer struct {
	sw *Switch
	ln gonet.Listener
}

// Addr reports the real listening address (resolves ":0" binds).
func (bs *BridgeServer) Addr() string { return bs.ln.Addr().String() }

// Close stops accepting new trunk links; established links live on.
func (bs *BridgeServer) Close() error {
	bs.sw.dropServer(bs)
	return bs.ln.Close()
}

func (bs *BridgeServer) acceptLoop() {
	for {
		c, err := bs.ln.Accept()
		if err != nil {
			return
		}
		bs.sw.startLink(c, false)
	}
}

// Bridge is one dialed trunk link (Switch.BridgeDial's handle).
type Bridge struct {
	link *bridgeLink
}

// Close tears the trunk down: every stream crossing it resets.
func (b *Bridge) Close() error {
	b.link.c.Close()
	return nil
}

// relayTarget maps a stream id on one link to its continuation on
// another — the transit state a middle switch keeps per relayed
// stream. Frames forward with an id rewrite and no local buffering,
// so end-to-end credit still binds total in-flight bytes.
type relayTarget struct {
	link *bridgeLink
	id   uint32
}

// bridgeLink is one trunk: the demux goroutine (run) plus per-stream
// state. Lock order: a frame handler may take sw.mu or one link's mu,
// never two link mutexes at once and never a stream's smu underneath
// either — the same single-lock discipline the wait-queue layer
// follows, so trunk traffic can't deadlock against poll wakeups.
type bridgeLink struct {
	sw   *Switch
	c    gonet.Conn
	name string

	wmu sync.Mutex // serializes frame writes

	// obs is the link's instrument set, resolved once at creation
	// (nil = observability off; see obs.go). Immutable, so the demux
	// goroutine and writers read it without locks.
	obs *linkObs

	mu      sync.Mutex
	nextID  uint32 // dialer odd, acceptor even
	streams map[uint32]*bridgeStream
	pending map[uint32]chan linux.Errno
	relays  map[uint32]relayTarget
	closed  bool
}

func newBridgeLink(sw *Switch, c gonet.Conn, dialer bool) *bridgeLink {
	l := &bridgeLink{
		sw:      sw,
		c:       c,
		name:    c.RemoteAddr().String(),
		obs:     sw.linkObsFor(c.RemoteAddr().String()),
		streams: make(map[uint32]*bridgeStream),
		pending: make(map[uint32]chan linux.Errno),
		relays:  make(map[uint32]relayTarget),
		nextID:  2,
	}
	if dialer {
		l.nextID = 1
	}
	return l
}

// send writes one frame; false once the link is down. A write error
// closes the TCP connection, which unblocks the demux loop into
// teardown — the single place link death is handled.
func (l *bridgeLink) send(frame []byte) bool {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if _, err := l.c.Write(frame); err != nil {
		l.c.Close()
		return false
	}
	if l.obs != nil {
		l.obs.observeTx(frame)
	}
	return true
}

// run is the demux loop: it owns the read side of the trunk and
// dispatches every frame. Any protocol violation or transport error
// lands in teardown.
func (l *bridgeLink) run() {
	defer l.teardown()
	r := bufio.NewReaderSize(l.c, 64*1024)
	typ, body, err := readFrame(r)
	if err != nil || typ != frHello || parseHello(body) != nil {
		return // not a fabric peer: reject before any state is shared
	}
	for {
		typ, body, err := readFrame(r)
		if err != nil {
			return
		}
		if l.obs != nil {
			l.obs.observeRx(typ, len(body)+5) // 4-byte length prefix + type
		}
		if !l.dispatch(typ, body) {
			return
		}
	}
}

func (l *bridgeLink) dispatch(typ byte, body []byte) bool {
	switch typ {
	case frHello:
		return false // duplicate hello: protocol violation
	case frAnnounce:
		p, hops, err := parseAnnounce(body)
		if err != nil || hops >= maxAnnounceHops {
			return err == nil // loops fade out, malformed frames kill the link
		}
		l.sw.learnRoute(p, hops, l)
	case frOpen:
		id, dst, src, err := parseOpen(body)
		if err != nil {
			return false
		}
		l.handleOpen(id, dst, src)
	case frAccept:
		id, _, err := parseStreamID(body)
		if err != nil {
			return false
		}
		l.handleAccept(id)
	case frRefuse:
		id, errno, err := parseRefuse(body)
		if err != nil {
			return false
		}
		l.handleRefuse(id, errno)
	case frData:
		id, payload, err := parseStreamID(body)
		if err != nil {
			return false
		}
		l.handleData(id, payload)
	case frWindow:
		id, credit, err := parseWindow(body)
		if err != nil {
			return false
		}
		l.handleWindow(id, credit)
	case frShut:
		id, _, err := parseStreamID(body)
		if err != nil {
			return false
		}
		l.handleShut(id)
	case frReset:
		id, _, err := parseStreamID(body)
		if err != nil {
			return false
		}
		l.handleReset(id)
	case frDgram:
		src, dst, payload, err := parseDgram(body)
		if err != nil {
			return false
		}
		l.handleDgram(src, dst, payload)
	default:
		return false // unknown frame type: protocol violation
	}
	return true
}

// teardown runs exactly once when the trunk dies: fail pending opens,
// reset every local stream, propagate resets through relays, and
// withdraw the routes learned here.
func (l *bridgeLink) teardown() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	streams := l.streams
	pending := l.pending
	relays := l.relays
	l.streams = make(map[uint32]*bridgeStream)
	l.pending = make(map[uint32]chan linux.Errno)
	l.relays = make(map[uint32]relayTarget)
	l.mu.Unlock()
	l.c.Close()
	for _, ch := range pending {
		select {
		case ch <- linux.ECONNRESET:
		default:
		}
	}
	for _, s := range streams {
		s.reset(false)
	}
	for _, rt := range relays {
		rt.link.dropRelay(rt.id)
		rt.link.send(frameStreamCtl(frReset, rt.id))
	}
	l.sw.detachLink(l)
}

func (l *bridgeLink) stream(id uint32) *bridgeStream {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[id]
}

func (l *bridgeLink) removeStream(id uint32) {
	l.mu.Lock()
	delete(l.streams, id)
	l.mu.Unlock()
}

func (l *bridgeLink) relay(id uint32) (relayTarget, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rt, ok := l.relays[id]
	return rt, ok
}

func (l *bridgeLink) dropRelay(id uint32) {
	l.mu.Lock()
	delete(l.relays, id)
	l.mu.Unlock()
}

// open dials a stream across the trunk on behalf of a local node:
// register the stream, send OPEN, wait for the ACCEPT/REFUSE verdict.
func (l *bridgeLink) open(dst, src Addr, node string) (Conn, linux.Errno) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, linux.EHOSTUNREACH
	}
	id := l.nextID
	l.nextID += 2
	ch := make(chan linux.Errno, 1)
	s := newBridgeStream(l, id, src, dst, node)
	l.streams[id] = s
	l.pending[id] = ch
	l.mu.Unlock()
	if !l.send(frameOpen(id, dst, src)) {
		l.dropPending(id)
		s.orphan()
		return nil, linux.EHOSTUNREACH
	}
	select {
	case errno := <-ch:
		if errno != 0 {
			s.orphan()
			return nil, errno
		}
		return s, 0
	case <-time.After(bridgeOpenTimeout):
		l.dropPending(id)
		s.orphan()
		return nil, linux.ETIMEDOUT
	}
}

func (l *bridgeLink) dropPending(id uint32) {
	l.mu.Lock()
	delete(l.pending, id)
	l.mu.Unlock()
}

// handleOpen terminates an inbound stream at a local listener, or
// relays it one hop closer to its destination.
func (l *bridgeLink) handleOpen(id uint32, dst, src Addr) {
	sw := l.sw
	sw.mu.Lock()
	nodeID, local := sw.nodes[dst.Addr]
	var lst *swListener
	if local {
		lst = sw.streams[swKey{node: nodeID, port: dst.Port}]
	}
	sw.mu.Unlock()
	if local {
		if lst == nil {
			l.send(frameRefuse(id, linux.ECONNREFUSED))
			return
		}
		s := newBridgeStream(l, id, dst, src, nodeID)
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			s.orphan()
			return
		}
		l.streams[id] = s
		l.mu.Unlock()
		if errno := lst.push(s, src); errno != 0 {
			l.removeStream(id)
			s.orphan()
			l.send(frameRefuse(id, errno))
			return
		}
		l.send(frameAccept(id))
		return
	}
	out := sw.linkFor(dst.Addr)
	if out == nil || out == l {
		l.send(frameRefuse(id, linux.EHOSTUNREACH))
		return
	}
	out.mu.Lock()
	if out.closed {
		out.mu.Unlock()
		l.send(frameRefuse(id, linux.EHOSTUNREACH))
		return
	}
	oid := out.nextID
	out.nextID += 2
	out.relays[oid] = relayTarget{link: l, id: id}
	out.mu.Unlock()
	l.mu.Lock()
	l.relays[id] = relayTarget{link: out, id: oid}
	l.mu.Unlock()
	out.send(frameOpen(oid, dst, src))
}

func frameAccept(id uint32) []byte { return frameStreamCtl(frAccept, id) }

func (l *bridgeLink) handleAccept(id uint32) {
	l.mu.Lock()
	ch := l.pending[id]
	delete(l.pending, id)
	l.mu.Unlock()
	if ch != nil {
		select {
		case ch <- 0:
		default:
		}
		return
	}
	if rt, ok := l.relay(id); ok {
		rt.link.send(frameAccept(rt.id))
	}
}

func (l *bridgeLink) handleRefuse(id uint32, errno linux.Errno) {
	l.mu.Lock()
	ch := l.pending[id]
	delete(l.pending, id)
	delete(l.streams, id)
	l.mu.Unlock()
	if ch != nil {
		select {
		case ch <- errno:
		default:
		}
		return
	}
	if rt, ok := l.relay(id); ok {
		l.dropRelay(id)
		rt.link.dropRelay(rt.id)
		rt.link.send(frameRefuse(rt.id, errno))
	}
}

func (l *bridgeLink) handleData(id uint32, payload []byte) {
	if s := l.stream(id); s != nil {
		s.deliverData(payload)
		return
	}
	if rt, ok := l.relay(id); ok {
		rt.link.send(frameData(rt.id, payload))
		return
	}
	// Data for a dead stream: tell the sender to stop (its FIN/WINDOW
	// stragglers are ignored, but data means it still thinks it has a
	// live peer).
	l.send(frameStreamCtl(frReset, id))
}

func (l *bridgeLink) handleWindow(id uint32, credit int) {
	if o := l.obs; o != nil && o.tr.Enabled() {
		o.tr.Emit(obs.Event{Kind: obs.EvNetWindow, Name: o.name,
			Arg1: int64(credit), Arg2: int64(id)})
	}
	if s := l.stream(id); s != nil {
		s.addCredit(credit)
		return
	}
	if rt, ok := l.relay(id); ok {
		rt.link.send(frameWindow(rt.id, uint32(credit)))
	}
}

func (l *bridgeLink) handleShut(id uint32) {
	if s := l.stream(id); s != nil {
		s.deliverFin()
		return
	}
	if rt, ok := l.relay(id); ok {
		rt.link.send(frameStreamCtl(frShut, rt.id))
	}
}

func (l *bridgeLink) handleReset(id uint32) {
	l.mu.Lock()
	ch := l.pending[id]
	delete(l.pending, id)
	s := l.streams[id]
	l.mu.Unlock()
	if ch != nil {
		select {
		case ch <- linux.ECONNRESET:
		default:
		}
	}
	if s != nil {
		s.reset(false)
		return
	}
	if rt, ok := l.relay(id); ok {
		l.dropRelay(id)
		rt.link.dropRelay(rt.id)
		rt.link.send(frameStreamCtl(frReset, rt.id))
	}
}

func (l *bridgeLink) handleDgram(src, dst Addr, payload []byte) {
	sw := l.sw
	sw.mu.Lock()
	nodeID, local := sw.nodes[dst.Addr]
	var q *dgramQueue
	if local {
		q = sw.dgrams[swKey{node: nodeID, port: dst.Port}]
	}
	sw.mu.Unlock()
	if local {
		if q != nil {
			q.enqueue(src, payload) // ENOBUFS drops, per UDP
		}
		return
	}
	if out := sw.linkFor(dst.Addr); out != nil && out != l {
		out.send(frameDgram(src, dst, payload))
	}
}

// resetNode aborts every stream terminated at a detaching local node.
func (l *bridgeLink) resetNode(nodeID string) {
	l.mu.Lock()
	var victims []*bridgeStream
	for _, s := range l.streams {
		if s.node == nodeID {
			victims = append(victims, s)
		}
	}
	l.mu.Unlock()
	for _, s := range victims {
		s.reset(true)
	}
}

// bridgeStream is one guest stream crossing a trunk: the shared
// pipeConn guest-facing half (nonblocking I/O, poll, backpressure via
// pipe capacity), bridged to the link by a txPump goroutine (guest tx
// pipe → credit-gated DATA frames) and an rxDeliver goroutine (inbox
// → guest rx pipe, returning WINDOW credit as the guest consumes).
// The demux loop never blocks on a stream: deliverData only appends
// to the inbox, whose size the sender's credit already bounds.
type bridgeStream struct {
	pipeConn
	link *bridgeLink
	id   uint32
	node string // owning local node id ("" only in tests)

	smu       sync.Mutex
	scond     *sync.Cond
	credit    int
	inbox     [][]byte
	remoteFin bool
	finSent   bool
	finRecvd  bool // FIN delivered to the guest as EOF
	rst       bool
	rxWClosed bool // bridge-side rx writer closed (FIN or reset)
	txRClosed bool // bridge-side tx reader closed (reset)
}

func newBridgeStream(l *bridgeLink, id uint32, local, peer Addr, node string) *bridgeStream {
	s := &bridgeStream{link: l, id: id, node: node, credit: bridgeWindow}
	s.scond = sync.NewCond(&s.smu)
	s.rx, s.tx = vfs.NewPipe(), vfs.NewPipe()
	s.local, s.peer = local, peer
	for _, p := range []*vfs.Pipe{s.rx, s.tx} {
		p.AddReader()
		p.AddWriter()
	}
	go s.txPump()
	go s.rxDeliver()
	return s
}

// Read maps the post-reset EOF to ECONNRESET so guests can tell an
// aborted stream from an orderly FIN.
func (s *bridgeStream) Read(b []byte, nonblock bool) (int, linux.Errno) {
	n, errno := s.pipeConn.Read(b, nonblock)
	if n == 0 && errno == 0 {
		s.smu.Lock()
		aborted := s.rst && !s.finRecvd
		s.smu.Unlock()
		if aborted {
			return 0, linux.ECONNRESET
		}
	}
	return n, errno
}

func (s *bridgeStream) txPump() {
	buf := make([]byte, bridgeChunk)
	for {
		n, errno := s.tx.Read(buf, false)
		if n > 0 {
			off := 0
			for off < n {
				k := s.takeCredit(n - off)
				if k == 0 {
					return // reset while waiting for credit
				}
				if !s.link.send(frameData(s.id, buf[off:off+k])) {
					s.reset(false)
					return
				}
				off += k
			}
			continue
		}
		if errno != 0 {
			return
		}
		// EOF: the guest finished writing.
		s.smu.Lock()
		rst := s.rst
		s.finSent = true
		s.smu.Unlock()
		if !rst {
			s.link.send(frameStreamCtl(frShut, s.id))
		}
		s.maybeRemove()
		return
	}
}

func (s *bridgeStream) takeCredit(want int) int {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.credit == 0 && !s.rst {
		// The tx pump is about to stall on flow control; measure the
		// stall only when it actually happens so the credit-available
		// fast path stays untouched.
		o := s.link.obs
		var stallStart time.Time
		if o != nil {
			stallStart = time.Now()
		}
		for s.credit == 0 && !s.rst {
			s.scond.Wait()
		}
		if o != nil {
			ns := time.Since(stallStart).Nanoseconds()
			o.stall.Record(ns)
			if o.tr.Enabled() {
				o.tr.Emit(obs.Event{Kind: obs.EvNetStall, Name: o.name,
					Dur: ns, Arg2: int64(s.id)})
			}
		}
	}
	if s.rst {
		return 0
	}
	if want > s.credit {
		want = s.credit
	}
	s.credit -= want
	return want
}

func (s *bridgeStream) addCredit(n int) {
	s.smu.Lock()
	s.credit += n
	if s.credit > bridgeWindow {
		s.credit = bridgeWindow
	}
	s.smu.Unlock()
	s.scond.Broadcast()
}

func (s *bridgeStream) rxDeliver() {
	for {
		s.smu.Lock()
		for len(s.inbox) == 0 && !s.remoteFin && !s.rst {
			s.scond.Wait()
		}
		if s.rst {
			s.smu.Unlock()
			return
		}
		if len(s.inbox) == 0 { // FIN after all data: orderly EOF
			s.finRecvd = true
			s.smu.Unlock()
			s.closeBridgeRx()
			s.maybeRemove()
			return
		}
		chunk := s.inbox[0]
		s.inbox = s.inbox[1:]
		s.smu.Unlock()
		if _, errno := s.rx.Write(chunk, false); errno != 0 {
			// The guest closed its read side with data in flight: abort
			// so the remote writer sees the reset instead of buffering
			// into the void.
			s.reset(true)
			return
		}
		s.link.send(frameWindow(s.id, uint32(len(chunk))))
	}
}

func (s *bridgeStream) deliverData(payload []byte) {
	s.smu.Lock()
	if s.rst || s.remoteFin {
		s.smu.Unlock()
		return
	}
	s.inbox = append(s.inbox, payload)
	s.smu.Unlock()
	s.scond.Broadcast()
}

func (s *bridgeStream) deliverFin() {
	s.smu.Lock()
	s.remoteFin = true
	s.smu.Unlock()
	s.scond.Broadcast()
}

// closeBridgeRx/closeBridgeTx release the bridge-side pipe ends
// exactly once (the guest side owns the other ends via pipeConn).
func (s *bridgeStream) closeBridgeRx() {
	s.smu.Lock()
	done := s.rxWClosed
	s.rxWClosed = true
	s.smu.Unlock()
	if !done {
		s.rx.CloseWriter()
	}
}

func (s *bridgeStream) closeBridgeTx() {
	s.smu.Lock()
	done := s.txRClosed
	s.txRClosed = true
	s.smu.Unlock()
	if !done {
		s.tx.CloseReader()
	}
}

// reset aborts both directions: guest reads drain then ECONNRESET,
// guest writes EPIPE, pumps unblock. sendFrame propagates the abort
// to the remote end (false when the link itself is already gone).
func (s *bridgeStream) reset(sendFrame bool) {
	s.smu.Lock()
	if s.rst {
		s.smu.Unlock()
		return
	}
	s.rst = true
	s.smu.Unlock()
	s.scond.Broadcast()
	s.closeBridgeRx()
	s.closeBridgeTx()
	if sendFrame {
		s.link.send(frameStreamCtl(frReset, s.id))
	}
	s.link.removeStream(s.id)
}

// orphan tears down a stream no guest ever owned (refused, timed out,
// or undeliverable): reset plus the guest-side close that normally
// comes from the kernel's fd table.
func (s *bridgeStream) orphan() {
	s.reset(false)
	s.pipeConn.Close()
}

// maybeRemove drops the stream from the link's demux table once both
// directions have finished cleanly.
func (s *bridgeStream) maybeRemove() {
	s.smu.Lock()
	done := s.finSent && s.finRecvd
	s.smu.Unlock()
	if done {
		s.link.removeStream(s.id)
	}
}

// Package kernel simulates a Linux kernel's userspace-visible semantics:
// processes and threads, file descriptors over an in-memory VFS, pipes,
// signals, futexes, loopback sockets, poll/epoll, timers and credentials.
//
// It is the substrate the WALI layer (internal/core) translates syscalls
// into. The package exposes a syscall-shaped API: operations return
// linux.Errno, blocking calls block the calling goroutine (each WALI
// process/thread runs on its own goroutine, matching the paper's 1-to-1
// process model).
package kernel

import (
	"sync"

	"gowali/internal/kernel/vfs"
	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// File is an open file description. Forked children share File instances
// (and therefore offsets), as POSIX requires.
type File interface {
	Read(b []byte) (int, linux.Errno)
	Write(b []byte) (int, linux.Errno)
	Pread(b []byte, off int64) (int, linux.Errno)
	Pwrite(b []byte, off int64) (int, linux.Errno)
	Lseek(off int64, whence int32) (int64, linux.Errno)
	Stat() (linux.Stat, linux.Errno)
	Truncate(size int64) linux.Errno
	Close() linux.Errno
	// Poll returns current readiness (POLLIN/POLLOUT/POLLHUP/POLLERR).
	Poll() int16
	// Flags returns the file status flags (access mode, O_NONBLOCK,
	// O_APPEND); SetFlags updates the mutable subset.
	Flags() int32
	SetFlags(int32)
	Ioctl(cmd uint32, arg []byte) (int32, linux.Errno)
}

// pather is implemented by files that track the path they were opened at
// (needed for openat(dirfd, ...) and /proc/self/cwd style diagnostics).
type pather interface{ Path() string }

// direader is implemented by directory files supporting getdents64.
type direader interface{ ReadDir() ([]vfs.DirEntry, bool) }

// --- base flag plumbing shared by implementations ---

type flagHolder struct {
	mu    sync.Mutex
	flags int32
}

func (f *flagHolder) Flags() int32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flags
}

func (f *flagHolder) SetFlags(v int32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	const settable = linux.O_NONBLOCK | linux.O_APPEND
	f.flags = f.flags&^int32(settable) | v&int32(settable)
}

func (f *flagHolder) nonblock() bool { return f.Flags()&linux.O_NONBLOCK != 0 }

// --- regular file / directory ---

// regFile is an open regular file, directory or symlink handle backed by a
// VFS inode.
type regFile struct {
	flagHolder
	ino  *vfs.Inode
	path string

	posMu  sync.Mutex
	pos    int64
	dirEnt []vfs.DirEntry
	dirPos int
	dirSet bool
}

func newRegFile(ino *vfs.Inode, path string, flags int32) *regFile {
	f := &regFile{ino: ino, path: path}
	f.flags = flags
	return f
}

func (f *regFile) Path() string { return f.path }

// Inode exposes the backing inode (used by fchmod/fchown/utimensat).
func (f *regFile) Inode() *vfs.Inode { return f.ino }

func (f *regFile) readable() bool { return f.Flags()&linux.O_ACCMODE != linux.O_WRONLY }
func (f *regFile) writable() bool { return f.Flags()&linux.O_ACCMODE != linux.O_RDONLY }

func (f *regFile) Read(b []byte) (int, linux.Errno) {
	if !f.readable() {
		return 0, linux.EBADF
	}
	if f.ino.IsDir() {
		return 0, linux.EISDIR
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	n, errno := f.ino.ReadAt(b, f.pos)
	f.pos += int64(n)
	return n, errno
}

func (f *regFile) Write(b []byte) (int, linux.Errno) {
	if !f.writable() {
		return 0, linux.EBADF
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	if f.Flags()&linux.O_APPEND != 0 {
		f.pos = f.ino.Size()
	}
	n, errno := f.ino.WriteAt(b, f.pos)
	f.pos += int64(n)
	return n, errno
}

func (f *regFile) Pread(b []byte, off int64) (int, linux.Errno) {
	if !f.readable() {
		return 0, linux.EBADF
	}
	return f.ino.ReadAt(b, off)
}

func (f *regFile) Pwrite(b []byte, off int64) (int, linux.Errno) {
	if !f.writable() {
		return 0, linux.EBADF
	}
	return f.ino.WriteAt(b, off)
}

func (f *regFile) Lseek(off int64, whence int32) (int64, linux.Errno) {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	var base int64
	switch whence {
	case linux.SEEK_SET:
		base = 0
	case linux.SEEK_CUR:
		base = f.pos
	case linux.SEEK_END:
		base = f.ino.Size()
	default:
		return 0, linux.EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, linux.EINVAL
	}
	f.pos = np
	f.dirSet = false // rewinddir
	f.dirPos = 0
	return np, 0
}

func (f *regFile) Stat() (linux.Stat, linux.Errno) { return f.ino.Stat(), 0 }

func (f *regFile) Truncate(size int64) linux.Errno {
	if !f.writable() {
		return 0 // ftruncate on O_RDONLY is EINVAL, but be permissive for EBADF cases
	}
	return f.ino.Truncate(size)
}

func (f *regFile) Close() linux.Errno { return 0 }

func (f *regFile) Poll() int16 { return linux.POLLIN | linux.POLLOUT }

// PollQueues implements event-driven poll readiness. Regular files are
// always ready, so no queue ever needs arming.
func (f *regFile) PollQueues() []*waitq.Queue { return nil }

func (f *regFile) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return 0, linux.ENOTTY
}

// ReadDir returns the next batch of directory entries (all remaining) and
// whether this file is a directory.
func (f *regFile) ReadDir() ([]vfs.DirEntry, bool) {
	if !f.ino.IsDir() {
		return nil, false
	}
	f.posMu.Lock()
	defer f.posMu.Unlock()
	if !f.dirSet {
		f.dirEnt = f.ino.List()
		f.dirPos = 0
		f.dirSet = true
	}
	out := f.dirEnt[f.dirPos:]
	f.dirPos = len(f.dirEnt)
	return out, true
}

// --- pipe ends ---

type pipeFile struct {
	flagHolder
	pipe    *vfs.Pipe
	readEnd bool
	k       *Kernel
	once    sync.Once
}

func newPipeFile(k *Kernel, p *vfs.Pipe, readEnd bool, flags int32) *pipeFile {
	f := &pipeFile{pipe: p, readEnd: readEnd, k: k}
	f.flags = flags
	if readEnd {
		p.AddReader()
	} else {
		p.AddWriter()
	}
	return f
}

func (f *pipeFile) Read(b []byte) (int, linux.Errno) {
	if !f.readEnd {
		return 0, linux.EBADF
	}
	return f.pipe.Read(b, f.nonblock())
}

func (f *pipeFile) Write(b []byte) (int, linux.Errno) {
	if f.readEnd {
		return 0, linux.EBADF
	}
	return f.pipe.Write(b, f.nonblock())
}

// ReadNB / WriteNB / blocking implement nbIO: the Process syscall
// layer drives blocking semantics through the signal-aware blockOn
// loop, never the pipe's internal condition variable.
func (f *pipeFile) ReadNB(b []byte) (int, linux.Errno) {
	if !f.readEnd {
		return 0, linux.EBADF
	}
	return f.pipe.Read(b, true)
}

func (f *pipeFile) WriteNB(b []byte) (int, linux.Errno) {
	if f.readEnd {
		return 0, linux.EBADF
	}
	return f.pipe.Write(b, true)
}

func (f *pipeFile) blocking() bool { return !f.nonblock() }

func (f *pipeFile) Pread(b []byte, off int64) (int, linux.Errno)  { return 0, linux.ESPIPE }
func (f *pipeFile) Pwrite(b []byte, off int64) (int, linux.Errno) { return 0, linux.ESPIPE }
func (f *pipeFile) Lseek(off int64, whence int32) (int64, linux.Errno) {
	return 0, linux.ESPIPE
}

func (f *pipeFile) Stat() (linux.Stat, linux.Errno) {
	return linux.Stat{Mode: linux.S_IFIFO | 0o600, Blksize: 4096}, 0
}

func (f *pipeFile) Truncate(int64) linux.Errno { return linux.EINVAL }

func (f *pipeFile) Close() linux.Errno {
	f.once.Do(func() {
		if f.readEnd {
			f.pipe.CloseReader()
		} else {
			f.pipe.CloseWriter()
		}
	})
	return 0
}

func (f *pipeFile) Poll() int16 { return f.pipe.Poll(f.readEnd) }

// PollQueues implements event-driven poll readiness.
func (f *pipeFile) PollQueues() []*waitq.Queue { return []*waitq.Queue{f.pipe.Queue()} }

func (f *pipeFile) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	if cmd == linux.FIONREAD {
		return int32(f.pipe.Buffered()), 0
	}
	return 0, linux.ENOTTY
}

// --- character devices ---

type devFile struct {
	flagHolder
	ino  *vfs.Inode
	dev  vfs.DeviceOps
	path string // absolute path the device was opened by (snapshot re-open)
}

// OpenDevOn rebinds descriptor fd of p's table onto the character device
// at path (stdio redirection: the facade points fd 2 at a host stderr
// stream device). The previous file on fd, if any, is replaced.
func (p *Process) OpenDevOn(fd int32, path string) linux.Errno {
	r, errno := p.K.FS.Walk("/", path, true)
	if errno != 0 || r.Node == nil || r.Node.Device() == nil {
		return linux.ENOENT
	}
	return p.FDs.Set(fd, newDevFile(r.Node, path, linux.O_RDWR), false)
}

func newDevFile(ino *vfs.Inode, path string, flags int32) *devFile {
	f := &devFile{ino: ino, dev: ino.Device(), path: path}
	f.flags = flags
	return f
}

func (f *devFile) Read(b []byte) (int, linux.Errno)  { return f.dev.Read(b, f.nonblock()) }
func (f *devFile) Write(b []byte) (int, linux.Errno) { return f.dev.Write(b) }
func (f *devFile) Pread(b []byte, off int64) (int, linux.Errno) {
	return f.dev.Read(b, f.nonblock())
}
func (f *devFile) Pwrite(b []byte, off int64) (int, linux.Errno) { return f.dev.Write(b) }
func (f *devFile) Lseek(off int64, whence int32) (int64, linux.Errno) {
	return 0, 0 // character devices accept but ignore seeks
}
func (f *devFile) Stat() (linux.Stat, linux.Errno) { return f.ino.Stat(), 0 }
func (f *devFile) Truncate(int64) linux.Errno      { return 0 }
func (f *devFile) Close() linux.Errno              { return 0 }
func (f *devFile) Poll() int16                     { return f.dev.Poll() }

// PollQueues delegates to the device when it supports event-driven
// readiness (the console); always-ready devices need no queues.
func (f *devFile) PollQueues() []*waitq.Queue {
	if pw, ok := f.dev.(pollWaitable); ok {
		return pw.PollQueues()
	}
	return nil
}
func (f *devFile) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return f.dev.Ioctl(cmd, arg)
}

// ReadNB / WriteNB / blocking implement nbIO for waitable devices (the
// console): a guest blocked reading stdin parks signal-aware instead
// of inside the device's condition variable. Devices without wait
// queues never block, so blocking reports false and the direct path
// serves them.
func (f *devFile) ReadNB(b []byte) (int, linux.Errno)  { return f.dev.Read(b, true) }
func (f *devFile) WriteNB(b []byte) (int, linux.Errno) { return f.dev.Write(b) }
func (f *devFile) blocking() bool {
	if _, ok := f.dev.(pollWaitable); !ok {
		return false
	}
	return !f.nonblock()
}

// --- FD table ---

type fdEntry struct {
	file    File
	cloexec bool
}

// FDReserver is a per-tenant descriptor budget hook (sched.Tenant
// implements it). ReserveFD charges one descriptor and may refuse;
// ForceFDs charges without enforcement (fork inheritance, stdio);
// ReleaseFDs uncharges.
type FDReserver interface {
	ReserveFD() bool
	ForceFDs(n int)
	ReleaseFDs(n int)
}

// FDTable maps descriptor numbers to open files. Threads share one table;
// fork copies the table (sharing the Files).
type FDTable struct {
	mu    sync.Mutex
	slots []fdEntry
	limit int
	// epolls counts installed EpollFiles so the common close path can
	// skip the interest-list sweep entirely.
	epolls int
	// res, when set, charges descriptor allocations against a tenant
	// budget (EMFILE at the cap, like the table's own limit).
	res FDReserver
}

// SetReserver installs the tenant descriptor budget hook; existing open
// descriptors are not retro-charged (the engine force-charges them).
func (t *FDTable) SetReserver(r FDReserver) {
	t.mu.Lock()
	t.res = r
	t.mu.Unlock()
}

// bookInstall/bookRemove maintain the epoll count; callers hold mu.
func (t *FDTable) bookInstall(f File) {
	if _, ok := f.(*EpollFile); ok {
		t.epolls++
	}
}

func (t *FDTable) bookRemove(f File) {
	if _, ok := f.(*EpollFile); ok {
		t.epolls--
	}
}

// forgetEpollLocked deregisters a closed or replaced descriptor from
// every epoll instance in the table, so a recycled fd number never
// reports the dead file's events. Callers hold mu; the sweep runs only
// when the table actually contains epolls. Forked tables share File
// instances (including EpollFiles) without refcounting — a close in
// any table closes the description everywhere — so dropping the
// shared registration on the first close matches the model's existing
// fork semantics, unlike Linux's per-description refcounted teardown.
func (t *FDTable) forgetEpollLocked(fd int32) {
	if t.epolls <= 0 {
		return
	}
	for _, e := range t.slots {
		if ef, ok := e.file.(*EpollFile); ok {
			ef.forget(fd)
		}
	}
}

// DefaultNOFILE is the default RLIMIT_NOFILE.
const DefaultNOFILE = 1024

// NewFDTable returns an empty table.
func NewFDTable() *FDTable {
	return &FDTable{limit: DefaultNOFILE}
}

// Get returns the file at fd.
func (t *FDTable) Get(fd int32) (File, linux.Errno) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fd < 0 || int(fd) >= len(t.slots) || t.slots[fd].file == nil {
		return nil, linux.EBADF
	}
	return t.slots[fd].file, 0
}

// Alloc installs f at the lowest free descriptor >= min.
func (t *FDTable) Alloc(f File, cloexec bool, min int32) (int32, linux.Errno) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for fd := int(min); ; fd++ {
		if fd >= t.limit {
			return -1, linux.EMFILE
		}
		for fd >= len(t.slots) {
			t.slots = append(t.slots, fdEntry{})
		}
		if t.slots[fd].file == nil {
			if t.res != nil && !t.res.ReserveFD() {
				return -1, linux.EMFILE
			}
			t.slots[fd] = fdEntry{file: f, cloexec: cloexec}
			t.bookInstall(f)
			return int32(fd), 0
		}
	}
}

// Set installs f at exactly fd (dup2), closing any existing file there.
func (t *FDTable) Set(fd int32, f File, cloexec bool) linux.Errno {
	if fd < 0 || int(fd) >= t.limit {
		return linux.EBADF
	}
	t.mu.Lock()
	for int(fd) >= len(t.slots) {
		t.slots = append(t.slots, fdEntry{})
	}
	old := t.slots[fd].file
	// dup2 over an occupied slot is budget-neutral; only filling an
	// empty slot charges the tenant.
	if old == nil && t.res != nil && !t.res.ReserveFD() {
		t.mu.Unlock()
		return linux.EMFILE
	}
	t.slots[fd] = fdEntry{file: f, cloexec: cloexec}
	if old != nil {
		t.bookRemove(old)
		t.forgetEpollLocked(fd) // dup2 over a registered fd drops its interest
	}
	t.bookInstall(f)
	t.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return 0
}

// Close removes fd and closes the file.
func (t *FDTable) Close(fd int32) linux.Errno {
	t.mu.Lock()
	if fd < 0 || int(fd) >= len(t.slots) || t.slots[fd].file == nil {
		t.mu.Unlock()
		return linux.EBADF
	}
	f := t.slots[fd].file
	t.slots[fd] = fdEntry{}
	t.bookRemove(f)
	t.forgetEpollLocked(fd)
	if t.res != nil {
		t.res.ReleaseFDs(1)
	}
	t.mu.Unlock()
	return f.Close()
}

// Cloexec reads or updates the close-on-exec flag.
func (t *FDTable) Cloexec(fd int32) (bool, linux.Errno) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fd < 0 || int(fd) >= len(t.slots) || t.slots[fd].file == nil {
		return false, linux.EBADF
	}
	return t.slots[fd].cloexec, 0
}

// SetCloexec updates the close-on-exec flag.
func (t *FDTable) SetCloexec(fd int32, v bool) linux.Errno {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fd < 0 || int(fd) >= len(t.slots) || t.slots[fd].file == nil {
		return linux.EBADF
	}
	t.slots[fd].cloexec = v
	return 0
}

// Clone copies the table for fork: same Files, same flags. Inherited
// descriptors are force-charged to the tenant (fork never fails on the
// descriptor limit, so the tenant may transiently overshoot; fresh
// allocations then fail until it drains).
func (t *FDTable) Clone() *FDTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &FDTable{limit: t.limit, slots: append([]fdEntry(nil), t.slots...), epolls: t.epolls, res: t.res}
	if t.res != nil {
		n := 0
		for _, e := range t.slots {
			if e.file != nil {
				n++
			}
		}
		t.res.ForceFDs(n)
	}
	return c
}

// CloseAll closes every descriptor (process exit).
func (t *FDTable) CloseAll() {
	t.mu.Lock()
	slots := t.slots
	t.slots = nil
	t.epolls = 0
	res := t.res
	t.mu.Unlock()
	n := 0
	for _, e := range slots {
		if e.file != nil {
			n++
			e.file.Close()
		}
	}
	if res != nil {
		res.ReleaseFDs(n)
	}
}

// CloseExec closes all close-on-exec descriptors (execve).
func (t *FDTable) CloseExec() {
	t.mu.Lock()
	var toClose []File
	for i := range t.slots {
		if t.slots[i].file != nil && t.slots[i].cloexec {
			f := t.slots[i].file
			toClose = append(toClose, f)
			t.slots[i] = fdEntry{}
			t.bookRemove(f)
			t.forgetEpollLocked(int32(i))
		}
	}
	if t.res != nil {
		t.res.ReleaseFDs(len(toClose))
	}
	t.mu.Unlock()
	for _, f := range toClose {
		f.Close()
	}
}

// Count returns the number of open descriptors.
func (t *FDTable) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.slots {
		if e.file != nil {
			n++
		}
	}
	return n
}

// Limit returns the RLIMIT_NOFILE-equivalent cap.
func (t *FDTable) Limit() int { return t.limit }

// SetLimit adjusts the descriptor cap (prlimit).
func (t *FDTable) SetLimit(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
}

package kernel

import (
	"io"
	"sync"

	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// ConsoleDevice is the controlling terminal: writes accumulate in an
// inspectable buffer, reads consume from an input queue fed by FeedInput.
type ConsoleDevice struct {
	mu   sync.Mutex
	cond *sync.Cond
	out  []byte
	in   []byte
	eof  bool
	ws   linux.Winsize
	q    waitq.Queue

	teeMu sync.Mutex // serializes tee writes, outside mu
	tee   io.Writer
}

// NewConsoleDevice returns a console with an 80x24 window.
func NewConsoleDevice() *ConsoleDevice {
	c := &ConsoleDevice{ws: linux.Winsize{Row: 24, Col: 80}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// FeedInput appends bytes for subsequent reads.
func (c *ConsoleDevice) FeedInput(b []byte) {
	c.mu.Lock()
	c.in = append(c.in, b...)
	c.mu.Unlock()
	c.cond.Broadcast()
	c.q.Wake()
}

// CloseInput marks end-of-input; readers see EOF once drained.
func (c *ConsoleDevice) CloseInput() {
	c.mu.Lock()
	c.eof = true
	c.mu.Unlock()
	c.cond.Broadcast()
	c.q.Wake()
}

// PollQueues implements event-driven poll readiness for stdin.
func (c *ConsoleDevice) PollQueues() []*waitq.Queue { return []*waitq.Queue{&c.q} }

// Output returns everything written so far.
func (c *ConsoleDevice) Output() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.out...)
}

// TakeOutput returns and clears the accumulated output.
func (c *ConsoleDevice) TakeOutput() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.out
	c.out = nil
	return out
}

// Read implements vfs.DeviceOps.
func (c *ConsoleDevice) Read(b []byte, nonblock bool) (int, linux.Errno) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.in) == 0 {
		if c.eof {
			return 0, 0
		}
		if nonblock {
			return 0, linux.EAGAIN
		}
		c.cond.Wait()
	}
	n := copy(b, c.in)
	c.in = c.in[n:]
	return n, 0
}

// SetTee streams every subsequent console write to w in addition to the
// inspectable buffer (the embedding API's stdout plumbing). Host write
// errors are ignored: the guest's tty never fails.
func (c *ConsoleDevice) SetTee(w io.Writer) {
	c.mu.Lock()
	c.tee = w
	c.mu.Unlock()
}

// Write implements vfs.DeviceOps. The tee write happens outside c.mu so
// a slow or re-entrant host writer (one that calls Output, say) cannot
// deadlock or stall other console operations; teeMu alone preserves the
// write order host-side.
func (c *ConsoleDevice) Write(b []byte) (int, linux.Errno) {
	c.mu.Lock()
	c.out = append(c.out, b...)
	// Tee from the buffered copy, not b: b aliases guest memory, which
	// sibling guest threads may mutate once mu is released.
	cp := c.out[len(c.out)-len(b):]
	tee := c.tee
	c.mu.Unlock()
	if tee != nil {
		c.teeMu.Lock()
		tee.Write(cp)
		c.teeMu.Unlock()
	}
	return len(b), 0
}

// Poll implements vfs.DeviceOps.
func (c *ConsoleDevice) Poll() int16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := int16(linux.POLLOUT)
	if len(c.in) > 0 || c.eof {
		ev |= linux.POLLIN
	}
	return ev
}

// Ioctl implements terminal controls: window size and a fake termios.
func (c *ConsoleDevice) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	switch cmd {
	case linux.TIOCGWINSZ:
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(arg) >= 8 {
			putU16 := func(off int, v uint16) { arg[off] = byte(v); arg[off+1] = byte(v >> 8) }
			putU16(0, c.ws.Row)
			putU16(2, c.ws.Col)
			putU16(4, c.ws.XPixel)
			putU16(6, c.ws.YPixel)
		}
		return 0, 0
	case linux.TCGETS, linux.TCSETS:
		return 0, 0 // accepted; termios content is opaque to the sim
	case linux.FIONREAD:
		c.mu.Lock()
		defer c.mu.Unlock()
		return int32(len(c.in)), 0
	}
	return 0, linux.ENOTTY
}

// StreamDevice is a write-only character device forwarding to a host
// io.Writer. The embedding facade installs one per redirected output
// stream (a distinct stderr sink) and rebinds the process descriptor
// onto it. Guest reads see immediate EOF; host write errors are
// invisible to the guest, whose tty never fails. (Host *input* goes
// through the console's FeedInput queue, which has real blocking and
// O_NONBLOCK semantics — a raw host reader cannot honor them.)
type StreamDevice struct {
	mu sync.Mutex
	W  io.Writer
}

// Read implements vfs.DeviceOps: always EOF.
func (d *StreamDevice) Read(b []byte, nonblock bool) (int, linux.Errno) {
	return 0, 0
}

// Write implements vfs.DeviceOps.
func (d *StreamDevice) Write(b []byte) (int, linux.Errno) {
	d.mu.Lock()
	w := d.W
	d.mu.Unlock()
	if w != nil {
		w.Write(b)
	}
	return len(b), 0
}

// Poll implements vfs.DeviceOps: always writable, and readable only in
// the sense that a read returns EOF without blocking.
func (d *StreamDevice) Poll() int16 { return linux.POLLIN | linux.POLLOUT }

// Ioctl implements vfs.DeviceOps.
func (d *StreamDevice) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return 0, linux.ENOTTY
}

// nullDevice is /dev/null.
type nullDevice struct{}

func (nullDevice) Read(b []byte, nonblock bool) (int, linux.Errno) { return 0, 0 }
func (nullDevice) Write(b []byte) (int, linux.Errno)               { return len(b), 0 }
func (nullDevice) Poll() int16                                     { return linux.POLLIN | linux.POLLOUT }
func (nullDevice) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return 0, linux.ENOTTY
}

// zeroDevice is /dev/zero.
type zeroDevice struct{}

func (zeroDevice) Read(b []byte, nonblock bool) (int, linux.Errno) {
	for i := range b {
		b[i] = 0
	}
	return len(b), 0
}
func (zeroDevice) Write(b []byte) (int, linux.Errno) { return len(b), 0 }
func (zeroDevice) Poll() int16                       { return linux.POLLIN | linux.POLLOUT }
func (zeroDevice) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return 0, linux.ENOTTY
}

// randomDevice is /dev/random and /dev/urandom over the kernel pool.
type randomDevice struct{ k *Kernel }

func (d *randomDevice) Read(b []byte, nonblock bool) (int, linux.Errno) {
	return d.k.GetRandom(b), 0
}
func (d *randomDevice) Write(b []byte) (int, linux.Errno) { return len(b), 0 }
func (d *randomDevice) Poll() int16                       { return linux.POLLIN | linux.POLLOUT }
func (d *randomDevice) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	return 0, linux.ENOTTY
}

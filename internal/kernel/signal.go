package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// SignalState is the signal disposition table and process-directed pending
// set, shared within a thread group (CLONE_SIGHAND).
type SignalState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	actions [linux.NSIG + 1]linux.Sigaction
	pending uint64  // process-directed pending bit-vector
	queue   []int32 // delivery order for pending signals
	killed  bool    // SIGKILL latched; uncatchable

	// fast mirrors pending (with killed folded into the SIGKILL bit) for
	// the lock-free safepoint fast path. Written only with mu held; read
	// without it by HasDeliverableSignal, which is polled on every loop
	// back-edge of every interpreter thread.
	fast atomic.Uint64

	// threaded latches once the owning group spawns a second thread.
	// Multi-threaded groups keep the locked poll path: its lock pairing is
	// what orders the threads' shared wasm memory accesses (futex wake
	// protocols rely on it), matching the pre-fast-path behavior.
	threaded atomic.Bool

	// pollQ wakes group members blocked in event-driven poll/epoll
	// waits so a process-directed signal turns into EINTR immediately
	// instead of at the next readiness event.
	pollQ waitq.Queue
}

// refreshFast republishes the lock-free pending summary; callers hold s.mu.
func (s *SignalState) refreshFast() {
	v := s.pending
	if s.killed {
		v |= sigBit(linux.SIGKILL)
	}
	s.fast.Store(v)
}

func newSignalState() *SignalState {
	s := &SignalState{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *SignalState) clone() *SignalState {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := newSignalState()
	c.actions = s.actions
	return c
}

// resetForExec restores caught handlers to SIG_DFL (SIG_IGN persists),
// per execve semantics.
func (s *SignalState) resetForExec() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.actions {
		if s.actions[i].Handler != linux.SIG_IGN {
			s.actions[i] = linux.Sigaction{}
		}
	}
}

func sigBit(sig int32) uint64 { return 1 << uint(sig-1) }

// defaultIgnored reports signals whose default action is to ignore.
func defaultIgnored(sig int32) bool {
	switch sig {
	case linux.SIGCHLD, linux.SIGURG, linux.SIGWINCH, linux.SIGCONT:
		return true
	}
	return false
}

// SigAction implements rt_sigaction: set (when act non-nil) and return the
// previous action.
func (p *Process) SigAction(sig int32, act *linux.Sigaction) (linux.Sigaction, linux.Errno) {
	if sig < 1 || sig > linux.NSIG || sig == linux.SIGKILL || sig == linux.SIGSTOP {
		if sig == linux.SIGKILL || sig == linux.SIGSTOP {
			if act != nil {
				return linux.Sigaction{}, linux.EINVAL
			}
		} else {
			return linux.Sigaction{}, linux.EINVAL
		}
	}
	s := p.sig
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.actions[sig]
	if act != nil {
		s.actions[sig] = *act
	}
	return old, 0
}

// SigMask returns the per-thread blocked set.
func (p *Process) SigMask() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sigMask
}

// SigProcMask implements rt_sigprocmask, returning the previous mask.
// SIGKILL and SIGSTOP can never be blocked.
func (p *Process) SigProcMask(how int32, set *uint64) (uint64, linux.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.sigMask
	if set != nil {
		v := *set &^ (sigBit(linux.SIGKILL) | sigBit(linux.SIGSTOP))
		switch how {
		case linux.SIG_BLOCK:
			p.sigMask |= v
		case linux.SIG_UNBLOCK:
			p.sigMask &^= *set
		case linux.SIG_SETMASK:
			p.sigMask = v
		default:
			return old, linux.EINVAL
		}
	}
	return old, 0
}

// PostSignal generates a process-directed signal (stage 2 of the paper's
// signal lifecycle: generation). Ignored-by-disposition signals are still
// queued; discard happens at delivery, matching the check order the WALI
// frontend expects.
func (p *Process) PostSignal(sig int32) linux.Errno {
	if sig == 0 {
		return 0
	}
	if sig < 1 || sig > linux.NSIG {
		return linux.EINVAL
	}
	s := p.sig
	s.mu.Lock()
	if sig == linux.SIGKILL {
		s.killed = true
	}
	if s.pending&sigBit(sig) == 0 {
		s.pending |= sigBit(sig)
		s.queue = append(s.queue, sig)
	}
	s.refreshFast()
	s.mu.Unlock()
	s.cond.Broadcast()
	s.pollQ.Wake()
	// Wake only this group's blocked wait4 calls (EINTR re-check); a
	// process-directed signal is deliverable to any thread in the group.
	p.group.notifyWaiters()
	return 0
}

// PostThreadSignal generates a thread-directed signal (tgkill).
func (p *Process) PostThreadSignal(sig int32) linux.Errno {
	if sig == 0 {
		return 0
	}
	if sig < 1 || sig > linux.NSIG {
		return linux.EINVAL
	}
	p.mu.Lock()
	p.pendingT |= sigBit(sig)
	p.pendingTFast.Store(p.pendingT)
	p.mu.Unlock()
	if sig == linux.SIGKILL {
		p.sig.mu.Lock()
		p.sig.killed = true
		p.sig.refreshFast()
		p.sig.mu.Unlock()
	}
	p.sig.cond.Broadcast()
	p.sig.pollQ.Wake()
	// Thread-directed: only this task's wait4 needs the EINTR re-check.
	p.notifyWaiters()
	return 0
}

// Killed reports whether SIGKILL was ever posted to the group.
func (p *Process) Killed() bool {
	p.sig.mu.Lock()
	defer p.sig.mu.Unlock()
	return p.sig.killed
}

// PendingSet returns the union of thread- and process-pending signals
// (rt_sigpending).
func (p *Process) PendingSet() uint64 {
	p.mu.Lock()
	t := p.pendingT
	p.mu.Unlock()
	p.sig.mu.Lock()
	defer p.sig.mu.Unlock()
	return t | p.sig.pending
}

// HasDeliverableSignal reports whether an unblocked signal is pending for
// this thread. The lock-free fast path keeps the cost of the interpreter's
// per-back-edge safepoint poll to two atomic loads when (as almost always)
// nothing is pending; the locked slow path is authoritative.
func (p *Process) HasDeliverableSignal() bool {
	if !p.sig.threaded.Load() && p.pendingTFast.Load() == 0 && p.sig.fast.Load() == 0 {
		return false
	}
	p.mu.Lock()
	mask := p.sigMask
	t := p.pendingT
	p.mu.Unlock()
	p.sig.mu.Lock()
	defer p.sig.mu.Unlock()
	return (t|p.sig.pending)&^mask != 0 || p.sig.killed
}

// PendingFatal reports — without consuming anything — whether an
// unblocked pending signal would terminate the process under its
// current disposition. The frontend checks this on every syscall
// return, mirroring Linux's return-to-userspace delivery point: a
// guest whose blocking syscall was interrupted by SIGKILL must die at
// the syscall boundary, not survive through straight-line code (with
// no safepoint back-edge) to a voluntary exit. Handler-backed and
// ignorable signals are left pending for safepoint delivery, where a
// Wasm handler can legally be invoked.
func (p *Process) PendingFatal() (int32, bool) {
	if !p.sig.threaded.Load() && p.pendingTFast.Load() == 0 && p.sig.fast.Load() == 0 {
		return 0, false
	}
	p.mu.Lock()
	mask := p.sigMask
	tPending := p.pendingT
	p.mu.Unlock()

	s := p.sig
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return linux.SIGKILL, true
	}
	pend := tPending | s.pending
	for sig := int32(1); sig <= linux.NSIG; sig++ {
		b := sigBit(sig)
		if pend&b == 0 || mask&b != 0 {
			continue
		}
		if s.actions[sig].Handler == linux.SIG_DFL && DefaultTerminates(sig) {
			return sig, true
		}
	}
	return 0, false
}

// DeliverableSignal is a dequeued signal ready for handler dispatch.
type DeliverableSignal struct {
	Sig    int32
	Action linux.Sigaction
}

// NextDeliverableSignal dequeues the next unblocked pending signal
// (stage 3: delivery). Signals whose effective disposition is "ignore" are
// consumed silently; the caller (the WALI frontend) dispatches the rest:
// SIG_DFL terminate/stop semantics or a Wasm handler call. Returns ok=false
// when nothing is deliverable.
func (p *Process) NextDeliverableSignal() (DeliverableSignal, bool) {
	p.mu.Lock()
	mask := p.sigMask
	tPending := p.pendingT
	p.mu.Unlock()

	s := p.sig
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.killed {
		return DeliverableSignal{Sig: linux.SIGKILL}, true
	}

	// Thread-directed first, lowest signal number first.
	for sig := int32(1); sig <= linux.NSIG; sig++ {
		b := sigBit(sig)
		if tPending&b != 0 && mask&b == 0 {
			p.mu.Lock()
			p.pendingT &^= b
			p.pendingTFast.Store(p.pendingT)
			p.mu.Unlock()
			act := s.actions[sig]
			if act.Handler == linux.SIG_IGN || (act.Handler == linux.SIG_DFL && defaultIgnored(sig)) {
				continue
			}
			return DeliverableSignal{Sig: sig, Action: act}, true
		}
	}

	for i := 0; i < len(s.queue); i++ {
		sig := s.queue[i]
		b := sigBit(sig)
		if mask&b != 0 {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.pending &^= b
		s.refreshFast()
		i--
		act := s.actions[sig]
		if act.Handler == linux.SIG_IGN || (act.Handler == linux.SIG_DFL && defaultIgnored(sig)) {
			continue
		}
		return DeliverableSignal{Sig: sig, Action: act}, true
	}
	return DeliverableSignal{}, false
}

// SigSuspend atomically replaces the mask and waits for a deliverable
// signal, then restores the mask. Always returns EINTR, like the syscall.
func (p *Process) SigSuspend(tempMask uint64) linux.Errno {
	p.mu.Lock()
	old := p.sigMask
	p.sigMask = tempMask &^ (sigBit(linux.SIGKILL) | sigBit(linux.SIGSTOP))
	p.mu.Unlock()

	p.waitDeliverable()

	p.mu.Lock()
	p.sigMask = old
	p.mu.Unlock()
	return linux.EINTR
}

// Pause waits until any deliverable signal arrives.
func (p *Process) Pause() linux.Errno {
	p.waitDeliverable()
	return linux.EINTR
}

// waitDeliverable blocks until a deliverable signal is pending. The run
// slot is released only when actually about to sleep: the first
// not-deliverable check drops s.mu for BeginBlock and then rechecks —
// the predicate is state-based (pending bits), so a signal posted in
// the unlocked window is seen by the recheck, not lost.
func (p *Process) waitDeliverable() {
	s := p.sig
	blocked := false
	s.mu.Lock()
	for !p.hasDeliverableLocked(s) && !p.quiesce.Load() {
		if !blocked {
			s.mu.Unlock()
			blocked = true
			p.BeginBlock()
			s.mu.Lock()
			continue
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
	if blocked {
		p.EndBlock()
	}
}

// hasDeliverableLocked requires s.mu held.
func (p *Process) hasDeliverableLocked(s *SignalState) bool {
	p.mu.Lock()
	mask := p.sigMask
	t := p.pendingT
	p.mu.Unlock()
	return (t|s.pending)&^mask != 0 || s.killed
}

// SigTimedWait waits for one of the signals in set to become pending,
// dequeues and returns it. A nil timeout waits forever.
func (p *Process) SigTimedWait(set uint64, timeout *linux.Timespec) (int32, linux.Errno) {
	deadline := time.Time{}
	if timeout != nil {
		deadline = time.Now().Add(time.Duration(timeout.Nanos()))
	}
	s := p.sig
	// One BeginBlock for the whole wait, ended on any return path; the
	// state-based pending check makes the unlocked window benign.
	blocked := false
	endBlock := func() {
		if blocked {
			p.EndBlock()
		}
	}
	for {
		s.mu.Lock()
		p.mu.Lock()
		avail := (p.pendingT | s.pending) & set
		if avail != 0 {
			// Lowest-numbered available signal.
			for sig := int32(1); sig <= linux.NSIG; sig++ {
				b := sigBit(sig)
				if avail&b == 0 {
					continue
				}
				p.pendingT &^= b
				p.pendingTFast.Store(p.pendingT)
				if s.pending&b != 0 {
					s.pending &^= b
					for i, q := range s.queue {
						if q == sig {
							s.queue = append(s.queue[:i], s.queue[i+1:]...)
							break
						}
					}
					s.refreshFast()
				}
				p.mu.Unlock()
				s.mu.Unlock()
				endBlock()
				return sig, 0
			}
		}
		p.mu.Unlock()

		if p.quiesce.Load() {
			s.mu.Unlock()
			endBlock()
			return -1, linux.EINTR
		}
		if timeout != nil {
			if !time.Now().Before(deadline) {
				s.mu.Unlock()
				endBlock()
				return -1, linux.EAGAIN
			}
			// Timed wait: poll with a short sleep (the sim trades precise
			// timer queues for simplicity).
			s.mu.Unlock()
			if !blocked {
				blocked = true
				p.BeginBlock()
			}
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if !blocked {
			s.mu.Unlock()
			blocked = true
			p.BeginBlock()
			continue
		}
		s.cond.Wait()
		s.mu.Unlock()
	}
}

// Kill implements kill(2) semantics for pid > 0, pid == 0 (caller's
// group), pid == -1 (all except init) and pid < -1 (group |pid|).
func (p *Process) Kill(pid int32, sig int32) linux.Errno {
	k := p.K
	switch {
	case pid > 0:
		t, ok := k.Process(pid)
		if !ok {
			return linux.ESRCH
		}
		return t.PostSignal(sig)
	case pid == 0:
		return k.killGroup(p.pgid, sig)
	case pid == -1:
		k.pidMu.RLock()
		targets := make([]*Process, 0, len(k.procs))
		for _, t := range k.procs {
			if t != p && t.PID != 1 {
				targets = append(targets, t)
			}
		}
		k.pidMu.RUnlock()
		for _, t := range targets {
			t.PostSignal(sig)
		}
		return 0
	default:
		return k.killGroup(-pid, sig)
	}
}

func (k *Kernel) killGroup(pgid int32, sig int32) linux.Errno {
	k.pidMu.RLock()
	var targets []*Process
	for _, t := range k.procs {
		t.mu.Lock()
		if t.pgid == pgid {
			targets = append(targets, t)
		}
		t.mu.Unlock()
	}
	k.pidMu.RUnlock()
	if len(targets) == 0 {
		return linux.ESRCH
	}
	for _, t := range targets {
		t.PostSignal(sig)
	}
	return 0
}

// Tgkill sends a thread-directed signal.
func (p *Process) Tgkill(tgid, tid, sig int32) linux.Errno {
	t, ok := p.K.Process(tid)
	if !ok {
		return linux.ESRCH
	}
	if tgid > 0 && t.TGID != tgid {
		return linux.ESRCH
	}
	return t.PostThreadSignal(sig)
}

// DefaultTerminates reports whether sig's default disposition kills the
// process (the WALI frontend consults this for SIG_DFL delivery).
func DefaultTerminates(sig int32) bool {
	if defaultIgnored(sig) {
		return false
	}
	switch sig {
	case linux.SIGSTOP, linux.SIGTSTP, linux.SIGTTIN, linux.SIGTTOU:
		return false // stop (not modeled as termination)
	}
	return true
}

package kernel

import (
	"fmt"
	"sync"

	"gowali/internal/kernel/vfs"
	"gowali/internal/linux"
)

// Loopback socket layer: AF_INET and AF_UNIX stream sockets plus datagram
// sockets, all within the simulated kernel. This is the substrate for the
// memcached- and MQTT-style workloads.

// SockAddr is the kernel-native socket address.
type SockAddr struct {
	Family uint16
	Port   uint16  // AF_INET
	Addr   [4]byte // AF_INET (ignored: everything is loopback)
	Path   string  // AF_UNIX
}

// String formats the address for diagnostics.
func (a SockAddr) String() string {
	if a.Family == linux.AF_UNIX {
		return "unix:" + a.Path
	}
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.Addr[0], a.Addr[1], a.Addr[2], a.Addr[3], a.Port)
}

type sockState int

const (
	sockUnbound sockState = iota
	sockBound
	sockListening
	sockConnected
	sockClosed
)

// datagram is one queued UDP packet.
type datagram struct {
	from SockAddr
	data []byte
}

// Socket is a socket file. Stream sockets use a pipe per direction;
// datagram sockets use a packet queue.
type Socket struct {
	flagHolder
	k      *Kernel
	domain int32
	typ    int32

	mu       sync.Mutex
	cond     *sync.Cond
	state    sockState
	local    SockAddr
	peer     SockAddr
	rx, tx   *vfs.Pipe // stream: rx = peer->us, tx = us->peer
	peerSock *Socket   // stream peer (for shutdown bookkeeping)
	dgrams   []datagram
	sockErr  linux.Errno
	opts     map[int32]int32
	closed   bool
	shutRd   bool
	shutWr   bool
	listener *listenerSocket
}

// listenerSocket carries the accept queue for a listening address.
type listenerSocket struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*Socket // server-side ends awaiting accept
	closed  bool
	owner   *Socket
}

// listenerReg is one bound-address registry (TCP ports or unix paths).
// Each registry carries its own lock, so binds and connects in one
// address family never serialize the other — or anything else in the
// kernel.
type listenerReg[K comparable] struct {
	mu sync.Mutex
	m  map[K]*listenerSocket
}

func (r *listenerReg[K]) get(k K) *listenerSocket {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

// put registers l at k; reports false when the address is taken.
func (r *listenerReg[K]) put(k K, l *listenerSocket) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, used := r.m[k]; used {
		return false
	}
	r.m[k] = l
	return true
}

func (r *listenerReg[K]) del(k K) {
	r.mu.Lock()
	delete(r.m, k)
	r.mu.Unlock()
}

func newSocket(k *Kernel, domain, typ int32, flags int32) *Socket {
	s := &Socket{k: k, domain: domain, typ: typ, opts: map[int32]int32{}}
	s.cond = sync.NewCond(&s.mu)
	s.flags = flags
	return s
}

// SocketSyscall implements socket(2).
func (p *Process) SocketSyscall(domain, typ, proto int32) (int32, linux.Errno) {
	base := typ &^ (linux.SOCK_NONBLOCK | linux.SOCK_CLOEXEC)
	if domain != linux.AF_INET && domain != linux.AF_UNIX {
		return -1, linux.EAFNOSUPPORT
	}
	if base != linux.SOCK_STREAM && base != linux.SOCK_DGRAM {
		return -1, linux.EPROTONOSUPPORT
	}
	var flags int32
	if typ&linux.SOCK_NONBLOCK != 0 {
		flags |= linux.O_NONBLOCK
	}
	s := newSocket(p.K, domain, base, flags)
	return p.FDs.Alloc(s, typ&linux.SOCK_CLOEXEC != 0, 0)
}

// SocketPair implements socketpair(2) for AF_UNIX.
func (p *Process) SocketPair(domain, typ, proto int32) (int32, int32, linux.Errno) {
	if domain != linux.AF_UNIX {
		return -1, -1, linux.EAFNOSUPPORT
	}
	base := typ &^ (linux.SOCK_NONBLOCK | linux.SOCK_CLOEXEC)
	var flags int32
	if typ&linux.SOCK_NONBLOCK != 0 {
		flags |= linux.O_NONBLOCK
	}
	a := newSocket(p.K, domain, base, flags)
	b := newSocket(p.K, domain, base, flags)
	ab := vfs.NewPipe()
	ba := vfs.NewPipe()
	wirePair(a, b, ab, ba)
	cloexec := typ&linux.SOCK_CLOEXEC != 0
	afd, errno := p.FDs.Alloc(a, cloexec, 0)
	if errno != 0 {
		return -1, -1, errno
	}
	bfd, errno := p.FDs.Alloc(b, cloexec, 0)
	if errno != 0 {
		p.FDs.Close(afd)
		return -1, -1, errno
	}
	return afd, bfd, 0
}

// wirePair connects two stream sockets with pipes ab (a→b) and ba (b→a).
func wirePair(a, b *Socket, ab, ba *vfs.Pipe) {
	ab.AddReader()
	ab.AddWriter()
	ba.AddReader()
	ba.AddWriter()
	a.mu.Lock()
	a.state = sockConnected
	a.tx, a.rx = ab, ba
	a.peerSock = b
	a.mu.Unlock()
	b.mu.Lock()
	b.state = sockConnected
	b.tx, b.rx = ba, ab
	b.peerSock = a
	b.mu.Unlock()
}

func (p *Process) getSocket(fd int32) (*Socket, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return nil, errno
	}
	s, ok := f.(*Socket)
	if !ok {
		return nil, linux.ENOTSOCK
	}
	return s, 0
}

// Bind implements bind(2).
func (p *Process) Bind(fd int32, addr SockAddr) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockUnbound {
		return linux.EINVAL
	}
	k := p.K
	if s.domain == linux.AF_INET {
		if addr.Port == 0 {
			// Ephemeral port assignment.
			k.ports.mu.Lock()
			for port := uint16(32768); port != 0; port++ {
				if _, used := k.ports.m[port]; !used {
					addr.Port = port
					break
				}
			}
			k.ports.mu.Unlock()
		}
	}
	s.local = addr
	s.state = sockBound
	return 0
}

// Listen implements listen(2), registering the address in the loopback
// port space.
func (p *Process) Listen(fd int32, backlog int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	if s.typ != linux.SOCK_STREAM {
		return linux.EOPNOTSUPP
	}
	s.mu.Lock()
	if s.state != sockBound {
		s.mu.Unlock()
		return linux.EINVAL
	}
	l := &listenerSocket{owner: s}
	l.cond = sync.NewCond(&l.mu)
	s.state = sockListening
	local := s.local
	s.mu.Unlock()

	k := p.K
	if s.domain == linux.AF_INET {
		if !k.ports.put(local.Port, l) {
			return linux.EADDRINUSE
		}
	} else {
		if !k.unixSock.put(local.Path, l) {
			return linux.EADDRINUSE
		}
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	return 0
}

// Accept implements accept4(2), blocking until a connection arrives.
func (p *Process) Accept(fd int32, flags int32) (int32, SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return -1, SockAddr{}, errno
	}
	s.mu.Lock()
	l := s.listener
	nb := s.flagHolder.nonblock()
	s.mu.Unlock()
	if l == nil {
		return -1, SockAddr{}, linux.EINVAL
	}
	l.mu.Lock()
	for len(l.pending) == 0 && !l.closed {
		if nb {
			l.mu.Unlock()
			return -1, SockAddr{}, linux.EAGAIN
		}
		l.cond.Wait()
	}
	if l.closed && len(l.pending) == 0 {
		l.mu.Unlock()
		return -1, SockAddr{}, linux.EINVAL
	}
	conn := l.pending[0]
	l.pending = l.pending[1:]
	l.mu.Unlock()

	var connFlags int32
	if flags&linux.SOCK_NONBLOCK != 0 {
		connFlags |= linux.O_NONBLOCK
	}
	conn.SetFlags(connFlags)
	nfd, errno := p.FDs.Alloc(conn, flags&linux.SOCK_CLOEXEC != 0, 0)
	if errno != 0 {
		conn.Close()
		return -1, SockAddr{}, errno
	}
	conn.mu.Lock()
	peer := conn.peer
	conn.mu.Unlock()
	return nfd, peer, 0
}

// Connect implements connect(2) against the loopback address space.
func (p *Process) Connect(fd int32, addr SockAddr) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	if s.typ == linux.SOCK_DGRAM {
		s.mu.Lock()
		s.peer = addr
		s.state = sockConnected
		s.mu.Unlock()
		return 0
	}
	k := p.K
	var l *listenerSocket
	if s.domain == linux.AF_INET {
		l = k.ports.get(addr.Port)
	} else {
		l = k.unixSock.get(addr.Path)
	}
	if l == nil {
		return linux.ECONNREFUSED
	}

	server := newSocket(k, s.domain, s.typ, 0)
	c2s := vfs.NewPipe()
	s2c := vfs.NewPipe()
	wirePair(s, server, c2s, s2c)
	s.mu.Lock()
	s.peer = addr
	s.mu.Unlock()
	server.mu.Lock()
	server.local = addr
	server.peer = s.local
	server.mu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return linux.ECONNREFUSED
	}
	l.pending = append(l.pending, server)
	l.mu.Unlock()
	l.cond.Broadcast()
	return 0
}

// SendTo implements sendto(2).
func (p *Process) SendTo(fd int32, b []byte, msgFlags int32, to *SockAddr) (int, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, errno
	}
	if s.typ == linux.SOCK_DGRAM {
		return s.sendDgram(p, b, to)
	}
	nb := s.flagHolder.nonblock() || msgFlags&linux.MSG_DONTWAIT != 0
	s.mu.Lock()
	tx := s.tx
	shut := s.shutWr
	s.mu.Unlock()
	if tx == nil || s.stateOf() != sockConnected {
		return 0, linux.ENOTCONN
	}
	if shut {
		return 0, linux.EPIPE
	}
	n, errno := tx.Write(b, nb)
	if errno == linux.EPIPE && msgFlags&linux.MSG_NOSIGNAL == 0 {
		p.PostSignal(linux.SIGPIPE)
	}
	return n, errno
}

// RecvFrom implements recvfrom(2).
func (p *Process) RecvFrom(fd int32, b []byte, msgFlags int32) (int, SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, SockAddr{}, errno
	}
	nb := s.flagHolder.nonblock() || msgFlags&linux.MSG_DONTWAIT != 0
	if s.typ == linux.SOCK_DGRAM {
		return s.recvDgram(b, nb)
	}
	s.mu.Lock()
	rx := s.rx
	peer := s.peer
	shut := s.shutRd
	s.mu.Unlock()
	if rx == nil {
		return 0, SockAddr{}, linux.ENOTCONN
	}
	if shut {
		return 0, peer, 0
	}
	n, errno := rx.Read(b, nb)
	return n, peer, errno
}

func (s *Socket) stateOf() sockState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *Socket) sendDgram(p *Process, b []byte, to *SockAddr) (int, linux.Errno) {
	s.mu.Lock()
	dest := s.peer
	s.mu.Unlock()
	if to != nil {
		dest = *to
	}
	if dest.Family == 0 {
		return 0, linux.EDESTADDRREQ
	}
	// Find the destination socket: linear scan over processes' sockets is
	// avoided by a dgram registry keyed on bind address.
	target := s.k.dgramFor(dest)
	if target == nil {
		return 0, linux.ECONNREFUSED
	}
	target.mu.Lock()
	if len(target.dgrams) >= 1024 {
		target.mu.Unlock()
		return 0, linux.ENOBUFS
	}
	s.mu.Lock()
	from := s.local
	s.mu.Unlock()
	target.dgrams = append(target.dgrams, datagram{from: from, data: append([]byte(nil), b...)})
	target.mu.Unlock()
	target.cond.Broadcast()
	return len(b), 0
}

func (s *Socket) recvDgram(b []byte, nonblock bool) (int, SockAddr, linux.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.dgrams) == 0 {
		if s.closed {
			return 0, SockAddr{}, 0
		}
		if nonblock {
			return 0, SockAddr{}, linux.EAGAIN
		}
		s.cond.Wait()
	}
	d := s.dgrams[0]
	s.dgrams = s.dgrams[1:]
	n := copy(b, d.data) // excess datagram bytes are discarded, per UDP
	return n, d.from, 0
}

// dgramFor finds the datagram socket bound to addr.
func (k *Kernel) dgramFor(addr SockAddr) *Socket {
	if addr.Family == linux.AF_UNIX {
		if l := k.unixSock.get(addr.Path); l != nil {
			return l.owner
		}
		return nil
	}
	if l := k.ports.get(addr.Port); l != nil {
		return l.owner
	}
	return nil
}

// Shutdown implements shutdown(2).
func (p *Process) Shutdown(fd int32, how int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockConnected {
		return linux.ENOTCONN
	}
	if how == linux.SHUT_RD || how == linux.SHUT_RDWR {
		s.shutRd = true
		if s.rx != nil {
			s.rx.CloseReader()
		}
	}
	if how == linux.SHUT_WR || how == linux.SHUT_RDWR {
		s.shutWr = true
		if s.tx != nil {
			s.tx.CloseWriter()
		}
	}
	return 0
}

// GetSockName returns the local address.
func (p *Process) GetSockName(fd int32) (SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return SockAddr{}, errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local, 0
}

// GetPeerName returns the peer address.
func (p *Process) GetPeerName(fd int32) (SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return SockAddr{}, errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockConnected {
		return SockAddr{}, linux.ENOTCONN
	}
	return s.peer, 0
}

// SetSockOpt stores an option value (stored and reported; semantics beyond
// SO_ERROR are accept-and-record, which is what the ported apps need).
func (p *Process) SetSockOpt(fd int32, level, opt, val int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts[level<<16|opt] = val
	return 0
}

// GetSockOpt retrieves an option value.
func (p *Process) GetSockOpt(fd int32, level, opt int32) (int32, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if level == linux.SOL_SOCKET && opt == linux.SO_ERROR {
		e := int32(s.sockErr)
		s.sockErr = 0
		return e, 0
	}
	return s.opts[level<<16|opt], 0
}

// --- File interface on Socket ---

// Read implements File.
func (s *Socket) Read(b []byte) (int, linux.Errno) {
	if s.typ == linux.SOCK_DGRAM {
		n, _, errno := s.recvDgram(b, s.nonblock())
		return n, errno
	}
	s.mu.Lock()
	rx := s.rx
	shut := s.shutRd
	s.mu.Unlock()
	if rx == nil {
		return 0, linux.ENOTCONN
	}
	if shut {
		return 0, 0
	}
	return rx.Read(b, s.nonblock())
}

// Write implements File.
func (s *Socket) Write(b []byte) (int, linux.Errno) {
	s.mu.Lock()
	tx := s.tx
	shut := s.shutWr
	s.mu.Unlock()
	if tx == nil {
		return 0, linux.ENOTCONN
	}
	if shut {
		return 0, linux.EPIPE
	}
	return tx.Write(b, s.nonblock())
}

// Pread implements File (ESPIPE).
func (s *Socket) Pread(b []byte, off int64) (int, linux.Errno) { return 0, linux.ESPIPE }

// Pwrite implements File (ESPIPE).
func (s *Socket) Pwrite(b []byte, off int64) (int, linux.Errno) { return 0, linux.ESPIPE }

// Lseek implements File (ESPIPE).
func (s *Socket) Lseek(off int64, whence int32) (int64, linux.Errno) { return 0, linux.ESPIPE }

// Stat implements File.
func (s *Socket) Stat() (linux.Stat, linux.Errno) {
	return linux.Stat{Mode: linux.S_IFSOCK | 0o777, Blksize: 4096}, 0
}

// Truncate implements File.
func (s *Socket) Truncate(int64) linux.Errno { return linux.EINVAL }

// Close implements File: tears down pipes and deregisters listeners.
func (s *Socket) Close() linux.Errno {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	s.closed = true
	rx, tx := s.rx, s.tx
	l := s.listener
	local := s.local
	domain := s.domain
	s.state = sockClosed
	s.mu.Unlock()

	if rx != nil {
		rx.CloseReader()
	}
	if tx != nil {
		tx.CloseWriter()
	}
	if l != nil {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		l.cond.Broadcast()
		if domain == linux.AF_INET {
			s.k.ports.del(local.Port)
		} else {
			s.k.unixSock.del(local.Path)
		}
	}
	s.cond.Broadcast()
	return 0
}

// Poll implements File.
func (s *Socket) Poll() int16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ev int16
	switch s.state {
	case sockListening:
		l := s.listener
		if l != nil {
			l.mu.Lock()
			if len(l.pending) > 0 {
				ev |= linux.POLLIN
			}
			l.mu.Unlock()
		}
	case sockConnected:
		if s.typ == linux.SOCK_DGRAM {
			if len(s.dgrams) > 0 {
				ev |= linux.POLLIN
			}
			ev |= linux.POLLOUT
			break
		}
		if s.rx != nil {
			ev |= s.rx.Poll(true) & (linux.POLLIN | linux.POLLHUP)
		}
		if s.tx != nil && s.tx.Poll(false)&linux.POLLOUT != 0 {
			ev |= linux.POLLOUT
		}
	default:
		if s.typ == linux.SOCK_DGRAM {
			if len(s.dgrams) > 0 {
				ev |= linux.POLLIN
			}
			ev |= linux.POLLOUT
		}
	}
	return ev
}

// Ioctl implements File.
func (s *Socket) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	if cmd == linux.FIONREAD {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.typ == linux.SOCK_DGRAM {
			if len(s.dgrams) > 0 {
				return int32(len(s.dgrams[0].data)), 0
			}
			return 0, 0
		}
		if s.rx != nil {
			return int32(s.rx.Buffered()), 0
		}
		return 0, 0
	}
	return 0, linux.ENOTTY
}

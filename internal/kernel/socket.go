package kernel

import (
	"strconv"
	"sync"
	"sync/atomic"

	"gowali/internal/kernel/net"
	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// Socket layer: AF_INET and AF_UNIX stream and datagram sockets as
// kernel files. The kernel owns descriptor semantics (flags, SIGPIPE,
// poll integration, shutdown state); the transport and address space
// behind every socket is a pluggable net.Backend — the loopback
// registry by default, a cross-kernel virtual switch or host-socket
// passthrough when configured (Kernel.SetNetBackend). AF_UNIX always
// stays on the kernel's private loopback instance: unix addresses are
// per-machine filesystem names, exactly as in a network namespace.

// SockAddr is the kernel-native socket address.
type SockAddr = net.Addr

type sockState int

const (
	sockUnbound sockState = iota
	sockBound
	sockListening
	sockConnecting // nonblocking connect in flight (EINPROGRESS)
	sockConnected
	sockClosed
)

// Socket is a socket file over a net.Backend object.
type Socket struct {
	flagHolder
	k      *Kernel
	domain int32
	typ    int32

	mu      sync.Mutex
	state   sockState
	local   SockAddr
	peer    SockAddr
	ln      net.Listener
	conn    net.Conn
	dg      net.DgramConn
	sockErr linux.Errno
	opts    map[int32]int32
	closed  bool
	shutRd  bool
	shutWr  bool

	// stateQ wakes pollers on lifecycle edges the transport queues
	// can't see (listen, connect, close).
	stateQ waitq.Queue
}

func newSocket(k *Kernel, domain, typ int32, flags int32) *Socket {
	s := &Socket{k: k, domain: domain, typ: typ, opts: map[int32]int32{}}
	s.flags = flags
	return s
}

// backend routes the socket to its address space: the configured
// AF_INET backend, or the kernel-private loopback for AF_UNIX.
func (s *Socket) backend() net.Backend {
	if s.domain == linux.AF_UNIX {
		return s.k.unixNet
	}
	return s.k.NetBackend()
}

// SocketSyscall implements socket(2).
func (p *Process) SocketSyscall(domain, typ, proto int32) (int32, linux.Errno) {
	base := typ &^ (linux.SOCK_NONBLOCK | linux.SOCK_CLOEXEC)
	if domain != linux.AF_INET && domain != linux.AF_UNIX {
		return -1, linux.EAFNOSUPPORT
	}
	if base != linux.SOCK_STREAM && base != linux.SOCK_DGRAM {
		return -1, linux.EPROTONOSUPPORT
	}
	var flags int32
	if typ&linux.SOCK_NONBLOCK != 0 {
		flags |= linux.O_NONBLOCK
	}
	s := newSocket(p.K, domain, base, flags)
	return p.FDs.Alloc(s, typ&linux.SOCK_CLOEXEC != 0, 0)
}

// SocketPair implements socketpair(2) for AF_UNIX.
func (p *Process) SocketPair(domain, typ, proto int32) (int32, int32, linux.Errno) {
	if domain != linux.AF_UNIX {
		return -1, -1, linux.EAFNOSUPPORT
	}
	base := typ &^ (linux.SOCK_NONBLOCK | linux.SOCK_CLOEXEC)
	var flags int32
	if typ&linux.SOCK_NONBLOCK != 0 {
		flags |= linux.O_NONBLOCK
	}
	ca, cb := net.NewStreamPair()
	a := newSocket(p.K, domain, base, flags)
	b := newSocket(p.K, domain, base, flags)
	a.conn, a.state = ca, sockConnected
	b.conn, b.state = cb, sockConnected
	cloexec := typ&linux.SOCK_CLOEXEC != 0
	afd, errno := p.FDs.Alloc(a, cloexec, 0)
	if errno != 0 {
		return -1, -1, errno
	}
	bfd, errno := p.FDs.Alloc(b, cloexec, 0)
	if errno != 0 {
		p.FDs.Close(afd)
		return -1, -1, errno
	}
	return afd, bfd, 0
}

func (p *Process) getSocket(fd int32) (*Socket, linux.Errno) {
	f, errno := p.FDs.Get(fd)
	if errno != 0 {
		return nil, errno
	}
	s, ok := f.(*Socket)
	if !ok {
		return nil, linux.ENOTSOCK
	}
	return s, 0
}

// Bind implements bind(2). Datagram sockets claim their address (and
// packet queue) immediately; stream sockets claim at listen(2).
func (p *Process) Bind(fd int32, addr SockAddr) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockUnbound {
		return linux.EINVAL
	}
	resolved, errno := s.backend().BindAddr(addr)
	if errno != 0 {
		return errno
	}
	if s.typ == linux.SOCK_DGRAM {
		dg, errno := s.backend().Dgram(resolved)
		if errno != 0 {
			return errno
		}
		s.dg = dg
		// A poller armed before the bind knows only stateQ; wake it
		// so it re-arms on the new packet queue.
		defer s.stateQ.Wake()
	}
	s.local = resolved
	s.state = sockBound
	return 0
}

// Listen implements listen(2), claiming the bound address in the
// backend's address space.
func (p *Process) Listen(fd int32, backlog int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	if s.typ != linux.SOCK_STREAM {
		return linux.EOPNOTSUPP
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockBound {
		return linux.EINVAL
	}
	l, errno := s.backend().Listen(s.local, int(backlog))
	if errno != 0 {
		return errno
	}
	s.ln = l
	s.state = sockListening
	s.stateQ.Wake()
	return 0
}

// Accept implements accept4(2), blocking until a connection arrives.
func (p *Process) Accept(fd int32, flags int32) (int32, SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return -1, SockAddr{}, errno
	}
	s.mu.Lock()
	l := s.ln
	local := s.local
	s.mu.Unlock()
	if l == nil {
		return -1, SockAddr{}, linux.EINVAL
	}
	var (
		conn net.Conn
		peer SockAddr
	)
	if s.nonblock() {
		conn, peer, errno = l.Accept(true)
	} else {
		// Blocking accept parks signal-aware so a forced termination
		// interrupts it instead of stranding the goroutine on the
		// accept queue's condition variable.
		errno = p.blockOn(s.PollQueues, func() linux.Errno {
			var e linux.Errno
			conn, peer, e = l.Accept(true)
			return e
		})
	}
	if errno != 0 {
		return -1, SockAddr{}, errno
	}

	ns := newSocket(p.K, s.domain, s.typ, 0)
	if flags&linux.SOCK_NONBLOCK != 0 {
		ns.SetFlags(linux.O_NONBLOCK)
	}
	ns.conn = conn
	ns.state = sockConnected
	ns.local = local
	ns.peer = peer
	nfd, errno := p.FDs.Alloc(ns, flags&linux.SOCK_CLOEXEC != 0, 0)
	if errno != 0 {
		conn.Close()
		return -1, SockAddr{}, errno
	}
	return nfd, peer, 0
}

// Connect implements connect(2).
func (p *Process) Connect(fd int32, addr SockAddr) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	if s.typ == linux.SOCK_DGRAM {
		s.mu.Lock()
		s.peer = addr
		s.state = sockConnected
		s.mu.Unlock()
		s.stateQ.Wake()
		return 0
	}
	s.mu.Lock()
	switch s.state {
	case sockConnected:
		s.mu.Unlock()
		return linux.EISCONN
	case sockConnecting:
		s.mu.Unlock()
		return linux.EALREADY
	case sockListening, sockClosed:
		s.mu.Unlock()
		return linux.EINVAL
	}
	local := s.local
	b := s.backend()
	if s.nonblock() {
		// Nonblocking connect: dial off-thread (HostNet dials can take
		// real time), report EINPROGRESS, complete via POLLOUT +
		// SO_ERROR like a real kernel.
		s.state = sockConnecting
		s.peer = addr
		s.mu.Unlock()
		go s.finishConnect(b, addr, local)
		return linux.EINPROGRESS
	}
	s.mu.Unlock()

	conn, errno := b.Connect(addr, local)
	if errno != 0 {
		return errno
	}
	return s.installConn(conn, addr)
}

// finishConnect completes an asynchronous connect: success installs
// the connection, failure parks the errno in SO_ERROR and returns the
// socket to its pre-connect state. Either way pollers wake (POLLOUT;
// POLLERR on failure).
func (s *Socket) finishConnect(b net.Backend, addr, local SockAddr) {
	conn, errno := b.Connect(addr, local)
	if errno != 0 {
		s.mu.Lock()
		if s.state == sockConnecting {
			s.sockErr = errno
			if local.Family != 0 {
				s.state = sockBound
			} else {
				s.state = sockUnbound
			}
		}
		s.mu.Unlock()
		s.stateQ.Wake()
		return
	}
	s.installConn(conn, addr)
}

// installConn publishes an established connection unless the socket
// raced into another terminal state, in which case the newcomer is
// torn down (keeping a concurrent winner's peer alive).
func (s *Socket) installConn(conn net.Conn, addr SockAddr) linux.Errno {
	s.mu.Lock()
	switch s.state {
	case sockClosed:
		s.mu.Unlock()
		conn.Close()
		return linux.EINVAL
	case sockConnected:
		s.mu.Unlock()
		conn.Close()
		return linux.EISCONN
	}
	s.conn = conn
	s.peer = addr
	s.state = sockConnected
	s.mu.Unlock()
	s.stateQ.Wake()
	return 0
}

// connFor snapshots the stream connection and shutdown state.
func (s *Socket) connFor() (net.Conn, bool, bool, sockState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn, s.shutRd, s.shutWr, s.state
}

// SendTo implements sendto(2).
func (p *Process) SendTo(fd int32, b []byte, msgFlags int32, to *SockAddr) (int, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, errno
	}
	if s.typ == linux.SOCK_DGRAM {
		return s.sendDgram(b, to)
	}
	nb := s.nonblock() || msgFlags&linux.MSG_DONTWAIT != 0
	conn, _, shutWr, state := s.connFor()
	if conn == nil || state != sockConnected {
		return 0, linux.ENOTCONN
	}
	if shutWr {
		return 0, linux.EPIPE
	}
	var n int
	if nb {
		n, errno = conn.Write(b, true)
	} else {
		// Blocking send(2) pushes the whole buffer, parking signal-aware
		// on back-pressure; a signal after a partial transfer returns
		// the partial count, as Linux does.
		total := 0
		errno = p.blockOn(s.PollQueues, func() linux.Errno {
			wn, e := conn.Write(b[total:], true)
			total += wn
			if e == 0 && total < len(b) {
				return linux.EAGAIN // partial: keep pushing
			}
			return e
		})
		n = total
		if total > 0 {
			errno = 0
		}
	}
	if errno == linux.EPIPE && msgFlags&linux.MSG_NOSIGNAL == 0 {
		p.PostSignal(linux.SIGPIPE)
	}
	return n, errno
}

// RecvFrom implements recvfrom(2).
func (p *Process) RecvFrom(fd int32, b []byte, msgFlags int32) (int, SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, SockAddr{}, errno
	}
	nb := s.nonblock() || msgFlags&linux.MSG_DONTWAIT != 0
	if s.typ == linux.SOCK_DGRAM {
		if nb {
			return s.recvDgram(b, true)
		}
		var (
			n    int
			from SockAddr
		)
		e := p.blockOn(s.PollQueues, func() linux.Errno {
			var errno linux.Errno
			n, from, errno = s.recvDgram(b, true)
			return errno
		})
		return n, from, e
	}
	conn, shutRd, _, _ := s.connFor()
	s.mu.Lock()
	peer := s.peer
	s.mu.Unlock()
	if conn == nil {
		return 0, SockAddr{}, linux.ENOTCONN
	}
	if shutRd {
		return 0, peer, 0
	}
	if nb {
		n, errno := conn.Read(b, true)
		return n, peer, errno
	}
	// Blocking receive parks through blockOn: interruptible by signals
	// (EINTR) and slot-releasing under the scheduler. The attempt
	// re-runs conn.Read, so a shutdown or close while parked surfaces
	// as EOF on the next pass.
	var n int
	e := p.blockOn(s.PollQueues, func() linux.Errno {
		var errno linux.Errno
		n, errno = conn.Read(b, true)
		return errno
	})
	return n, peer, e
}

// ensureDgram lazily binds an unbound datagram socket to an ephemeral
// address (the implicit bind of a first sendto/recvfrom).
func (s *Socket) ensureDgram() (net.DgramConn, linux.Errno) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dg != nil {
		return s.dg, 0
	}
	if s.closed {
		return nil, linux.EBADF
	}
	addr := SockAddr{Family: uint16(s.domain)}
	if s.domain == linux.AF_UNIX {
		// Autobind: a machine-unique abstract-style name.
		addr.Path = "@autobind-" + strconv.Itoa(int(autoSeq.Add(1)))
	}
	resolved, errno := s.backend().BindAddr(addr)
	if errno != 0 {
		return nil, errno
	}
	dg, errno := s.backend().Dgram(resolved)
	if errno != 0 {
		return nil, errno
	}
	s.dg = dg
	if s.state == sockUnbound {
		s.local = resolved
	}
	defer s.stateQ.Wake() // re-arm pollers onto the new packet queue
	return dg, 0
}

// autoSeq numbers unix datagram autobind names.
var autoSeq atomic.Int64

func (s *Socket) sendDgram(b []byte, to *SockAddr) (int, linux.Errno) {
	s.mu.Lock()
	dest := s.peer
	s.mu.Unlock()
	if to != nil {
		dest = *to
	}
	if dest.Family == 0 {
		return 0, linux.EDESTADDRREQ
	}
	dg, errno := s.ensureDgram()
	if errno != 0 {
		return 0, errno
	}
	return dg.SendTo(b, dest)
}

func (s *Socket) recvDgram(b []byte, nonblock bool) (int, SockAddr, linux.Errno) {
	dg, errno := s.ensureDgram()
	if errno != 0 {
		if errno == linux.EBADF {
			return 0, SockAddr{}, 0 // closed: drained
		}
		return 0, SockAddr{}, errno
	}
	return dg.RecvFrom(b, nonblock)
}

// Shutdown implements shutdown(2).
func (p *Process) Shutdown(fd int32, how int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	s.mu.Lock()
	if s.state != sockConnected {
		s.mu.Unlock()
		return linux.ENOTCONN
	}
	conn := s.conn
	if how == linux.SHUT_RD || how == linux.SHUT_RDWR {
		s.shutRd = true
	}
	if how == linux.SHUT_WR || how == linux.SHUT_RDWR {
		s.shutWr = true
	}
	rd, wr := s.shutRd, s.shutWr
	s.mu.Unlock()
	if conn != nil {
		if rd {
			conn.CloseRead()
		}
		if wr {
			conn.CloseWrite()
		}
	}
	s.stateQ.Wake()
	return 0
}

// GetSockName returns the local address.
func (p *Process) GetSockName(fd int32) (SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return SockAddr{}, errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local, 0
}

// GetPeerName returns the peer address.
func (p *Process) GetPeerName(fd int32) (SockAddr, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return SockAddr{}, errno
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sockConnected {
		return SockAddr{}, linux.ENOTCONN
	}
	return s.peer, 0
}

// sockOptKnown is the accepted option matrix: the options libc and
// common servers actually set, honored as record-and-report (and
// forwarded to the transport where it can do better, e.g. TCP_NODELAY
// on host sockets). Anything outside the matrix is ENOPROTOOPT, like
// a real kernel — silent acceptance of arbitrary options masked real
// porting bugs.
func sockOptKnown(level, opt int32) bool {
	switch level {
	case linux.SOL_SOCKET:
		switch opt {
		case linux.SO_REUSEADDR, linux.SO_REUSEPORT, linux.SO_KEEPALIVE,
			linux.SO_SNDBUF, linux.SO_RCVBUF, linux.SO_RCVTIMEO,
			linux.SO_SNDTIMEO, linux.SO_LINGER, linux.SO_BROADCAST,
			linux.SO_DONTROUTE, linux.SO_OOBINLINE, linux.SO_PRIORITY,
			linux.SO_ERROR, linux.SO_TYPE, linux.SO_ACCEPTCONN:
			return true
		}
	case linux.IPPROTO_IP:
		switch opt {
		case linux.IP_TOS, linux.IP_TTL:
			return true
		}
	case linux.IPPROTO_TCP:
		switch opt {
		case linux.TCP_NODELAY, linux.TCP_KEEPIDLE, linux.TCP_KEEPINTVL,
			linux.TCP_KEEPCNT, linux.TCP_QUICKACK:
			return true
		}
	case linux.IPPROTO_IPV6:
		switch opt {
		case linux.IPV6_V6ONLY:
			return true
		}
	}
	return false
}

// SetSockOpt implements setsockopt(2) over the known-option matrix.
func (p *Process) SetSockOpt(fd int32, level, opt, val int32) linux.Errno {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return errno
	}
	if !sockOptKnown(level, opt) {
		return linux.ENOPROTOOPT
	}
	if level == linux.SOL_SOCKET && (opt == linux.SO_ERROR || opt == linux.SO_TYPE || opt == linux.SO_ACCEPTCONN) {
		return linux.ENOPROTOOPT // read-only options
	}
	s.mu.Lock()
	s.opts[level<<16|opt] = val
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.SetOpt(level, opt, val)
	}
	return 0
}

// GetSockOpt implements getsockopt(2).
func (p *Process) GetSockOpt(fd int32, level, opt int32) (int32, linux.Errno) {
	s, errno := p.getSocket(fd)
	if errno != 0 {
		return 0, errno
	}
	if !sockOptKnown(level, opt) {
		return 0, linux.ENOPROTOOPT
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if level == linux.SOL_SOCKET {
		switch opt {
		case linux.SO_ERROR:
			e := int32(s.sockErr)
			s.sockErr = 0
			return e, 0
		case linux.SO_TYPE:
			return s.typ, 0
		case linux.SO_ACCEPTCONN:
			if s.state == sockListening {
				return 1, 0
			}
			return 0, 0
		case linux.SO_SNDBUF, linux.SO_RCVBUF:
			if v, ok := s.opts[level<<16|opt]; ok {
				return v, 0
			}
			return 64 * 1024, 0 // the pipe capacity behind every stream
		}
	}
	return s.opts[level<<16|opt], 0
}

// --- File interface on Socket ---

// Read implements File.
func (s *Socket) Read(b []byte) (int, linux.Errno) {
	if s.typ == linux.SOCK_DGRAM {
		n, _, errno := s.recvDgram(b, s.nonblock())
		return n, errno
	}
	conn, shutRd, _, _ := s.connFor()
	if conn == nil {
		return 0, linux.ENOTCONN
	}
	if shutRd {
		return 0, 0
	}
	return conn.Read(b, s.nonblock())
}

// ReadNB / WriteNB / blocking implement nbIO: the Process syscall
// layer supplies blocking semantics through the signal-aware blockOn
// loop, so a blocked recv parks interruptibly and releases its
// scheduler slot rather than sleeping in a pipe condition variable.
func (s *Socket) ReadNB(b []byte) (int, linux.Errno) {
	if s.typ == linux.SOCK_DGRAM {
		n, _, errno := s.recvDgram(b, true)
		return n, errno
	}
	conn, shutRd, _, _ := s.connFor()
	if conn == nil {
		return 0, linux.ENOTCONN
	}
	if shutRd {
		return 0, 0
	}
	return conn.Read(b, true)
}

func (s *Socket) WriteNB(b []byte) (int, linux.Errno) {
	if s.typ == linux.SOCK_DGRAM {
		return s.sendDgram(b, nil)
	}
	conn, _, shutWr, _ := s.connFor()
	if conn == nil {
		return 0, linux.ENOTCONN
	}
	if shutWr {
		return 0, linux.EPIPE
	}
	return conn.Write(b, true)
}

func (s *Socket) blocking() bool { return !s.nonblock() }

// Write implements File.
func (s *Socket) Write(b []byte) (int, linux.Errno) {
	if s.typ == linux.SOCK_DGRAM {
		n, errno := s.sendDgram(b, nil)
		return n, errno
	}
	conn, _, shutWr, _ := s.connFor()
	if conn == nil {
		return 0, linux.ENOTCONN
	}
	if shutWr {
		return 0, linux.EPIPE
	}
	return conn.Write(b, s.nonblock())
}

// Pread implements File (ESPIPE).
func (s *Socket) Pread(b []byte, off int64) (int, linux.Errno) { return 0, linux.ESPIPE }

// Pwrite implements File (ESPIPE).
func (s *Socket) Pwrite(b []byte, off int64) (int, linux.Errno) { return 0, linux.ESPIPE }

// Lseek implements File (ESPIPE).
func (s *Socket) Lseek(off int64, whence int32) (int64, linux.Errno) { return 0, linux.ESPIPE }

// Stat implements File.
func (s *Socket) Stat() (linux.Stat, linux.Errno) {
	return linux.Stat{Mode: linux.S_IFSOCK | 0o777, Blksize: 4096}, 0
}

// Truncate implements File.
func (s *Socket) Truncate(int64) linux.Errno { return linux.EINVAL }

// Close implements File: tears down the transport objects and releases
// the claimed addresses.
func (s *Socket) Close() linux.Errno {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	s.closed = true
	ln, conn, dg := s.ln, s.conn, s.dg
	s.state = sockClosed
	s.mu.Unlock()

	if conn != nil {
		conn.Close()
	}
	if ln != nil {
		ln.Close()
	}
	if dg != nil {
		dg.Close()
	}
	s.stateQ.Wake()
	return 0
}

// Poll implements File.
func (s *Socket) Poll() int16 {
	s.mu.Lock()
	state := s.state
	ln, conn, dg := s.ln, s.conn, s.dg
	shutRd := s.shutRd
	sockErr := s.sockErr
	s.mu.Unlock()
	switch state {
	case sockListening:
		if ln != nil {
			// Pass POLLHUP through: an asynchronously closed listener
			// (HostNet teardown, accept-loop death) must end a
			// blocked poll rather than strand it.
			return ln.Readiness()
		}
	case sockConnecting:
		return 0 // not writable until the async connect resolves
	case sockConnected:
		if s.typ == linux.SOCK_DGRAM {
			if dg != nil {
				return dg.Readiness()
			}
			return linux.POLLOUT
		}
		if conn != nil {
			ev := conn.Readiness()
			if shutRd {
				ev |= linux.POLLIN // reads return 0 without blocking
			}
			return ev
		}
	default:
		if s.typ == linux.SOCK_DGRAM {
			if dg != nil {
				return dg.Readiness()
			}
			return linux.POLLOUT
		}
		if sockErr != 0 {
			// A failed nonblocking connect: writable-with-error so the
			// event loop's POLLOUT wait ends and SO_ERROR reports why.
			return linux.POLLOUT | linux.POLLERR
		}
	}
	return 0
}

// PollQueues implements the event-driven readiness hookup: every wait
// queue whose wakeup can change this socket's Poll result.
func (s *Socket) PollQueues() []*waitq.Queue {
	s.mu.Lock()
	defer s.mu.Unlock()
	qs := []*waitq.Queue{&s.stateQ}
	if s.ln != nil {
		qs = append(qs, s.ln.Queue())
	}
	if s.conn != nil {
		qs = append(qs, s.conn.Queues()...)
	}
	if s.dg != nil {
		qs = append(qs, s.dg.Queue())
	}
	return qs
}

// Ioctl implements File.
func (s *Socket) Ioctl(cmd uint32, arg []byte) (int32, linux.Errno) {
	if cmd == linux.FIONREAD {
		s.mu.Lock()
		conn, dg := s.conn, s.dg
		s.mu.Unlock()
		if s.typ == linux.SOCK_DGRAM {
			if dg != nil {
				return int32(dg.Buffered()), 0
			}
			return 0, 0
		}
		if conn != nil {
			return int32(conn.Buffered()), 0
		}
		return 0, 0
	}
	return 0, linux.ENOTTY
}

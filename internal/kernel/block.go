package kernel

import (
	"gowali/internal/kernel/waitq"
	"gowali/internal/linux"
)

// blockOn is the kernel's single signal-aware blocking primitive for
// descriptor I/O: it retries attempt (which must behave as if
// O_NONBLOCK were set, returning EAGAIN to keep waiting) until it
// produces a result, parking event-driven on the file's wait queues
// between attempts.
//
// Every blocking fd syscall needs the same three properties, supplied
// here in one place:
//
//   - signal interruption: the waiter is registered on the signal
//     pollQ, so a posted signal — including the SIGKILL of a forced
//     termination or a budget overrun sweep — turns the park into
//     EINTR instead of a condition-variable sleep nothing can end;
//   - scheduler integration: the sleep is bracketed by
//     BeginBlock/EndBlock, so a scheduled guest blocked in read(2) or
//     recvfrom(2) releases its run slot instead of pinning a worker;
//   - no lost wakeups: queues are armed BEFORE each attempt, so a
//     readiness edge between the attempt and the sleep lands on the
//     waiter (the same arm-then-check protocol as poll).
//
// queues is re-evaluated every round because a file's wakeup sources
// can change with its state (connect, accept, lazy datagram bind).
// nbIO is implemented by files whose blocking behavior is supplied by
// blockOn instead of an internal condition variable: ReadNB/WriteNB
// always act as if O_NONBLOCK were set, and blocking reports whether
// the descriptor wants blocking semantics at all. Files that never
// return EAGAIN (regular files, always-ready devices) simply don't
// implement it and keep their direct Read/Write paths.
type nbIO interface {
	pollWaitable
	ReadNB(b []byte) (int, linux.Errno)
	WriteNB(b []byte) (int, linux.Errno)
	blocking() bool
}

// readBlocking performs blocking read(2) semantics over an nbIO file.
func (p *Process) readBlocking(f nbIO, b []byte) (int, linux.Errno) {
	var n int
	errno := p.blockOn(f.PollQueues, func() linux.Errno {
		var e linux.Errno
		n, e = f.ReadNB(b)
		return e
	})
	return n, errno
}

// writeBlocking performs blocking write(2) semantics over an nbIO
// file: the whole buffer is pushed, parking on back-pressure; a signal
// after a partial transfer returns the partial count, as Linux does.
func (p *Process) writeBlocking(f nbIO, b []byte) (int, linux.Errno) {
	total := 0
	errno := p.blockOn(f.PollQueues, func() linux.Errno {
		n, e := f.WriteNB(b[total:])
		total += n
		if e == 0 && total < len(b) {
			return linux.EAGAIN // partial: keep pushing
		}
		return e
	})
	if total > 0 {
		return total, 0
	}
	return 0, errno
}

func (p *Process) blockOn(queues func() []*waitq.Queue, attempt func() linux.Errno) linux.Errno {
	// Fast path: the data (or a terminal condition) is already there.
	if errno := attempt(); errno != linux.EAGAIN {
		return errno
	}
	w := waitq.NewWaiter()
	p.sig.pollQ.Add(w)
	defer p.sig.pollQ.Remove(w)
	var armed []*waitq.Queue
	disarm := func() {
		for _, q := range armed {
			q.Remove(w)
		}
		armed = armed[:0]
	}
	for {
		w.Clear()
		for _, q := range queues() {
			q.Add(w)
			armed = append(armed, q)
		}
		if errno := attempt(); errno != linux.EAGAIN {
			disarm()
			return errno
		}
		// Level-triggered, so checking after the arm is sufficient: a
		// signal posted past this point wakes w through sig.pollQ, as
		// does a snapshot quiesce request.
		if p.HasDeliverableSignal() || p.QuiesceRequested() {
			disarm()
			return linux.EINTR
		}
		p.BeginBlock()
		<-w.C
		p.EndBlock()
		disarm()
	}
}

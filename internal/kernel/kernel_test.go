package kernel

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gowali/internal/linux"
)

func newTestProc(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	k := NewKernel()
	p := k.NewProcess("test", []string{"test"}, nil)
	return k, p
}

func TestOpenWriteReadClose(t *testing.T) {
	_, p := newTestProc(t)
	fd, errno := p.Open("/tmp/hello.txt", linux.O_CREAT|linux.O_RDWR, 0o644)
	if errno != 0 {
		t.Fatalf("open: %v", errno)
	}
	if n, errno := p.Write(fd, []byte("hello world")); errno != 0 || n != 11 {
		t.Fatalf("write: n=%d %v", n, errno)
	}
	if _, errno := p.Lseek(fd, 0, linux.SEEK_SET); errno != 0 {
		t.Fatalf("lseek: %v", errno)
	}
	buf := make([]byte, 64)
	n, errno := p.Read(fd, buf)
	if errno != 0 || string(buf[:n]) != "hello world" {
		t.Fatalf("read: %q %v", buf[:n], errno)
	}
	if errno := p.Close(fd); errno != 0 {
		t.Fatalf("close: %v", errno)
	}
	if _, errno := p.Read(fd, buf); errno != linux.EBADF {
		t.Fatalf("read after close: %v, want EBADF", errno)
	}
}

func TestOpenFlagsSemantics(t *testing.T) {
	_, p := newTestProc(t)
	// O_EXCL on existing file.
	fd, _ := p.Open("/tmp/x", linux.O_CREAT, 0o644)
	p.Close(fd)
	if _, errno := p.Open("/tmp/x", linux.O_CREAT|linux.O_EXCL, 0o644); errno != linux.EEXIST {
		t.Errorf("O_EXCL: %v, want EEXIST", errno)
	}
	// O_TRUNC truncates.
	fd, _ = p.Open("/tmp/x", linux.O_WRONLY, 0)
	p.Write(fd, []byte("0123456789"))
	p.Close(fd)
	fd, _ = p.Open("/tmp/x", linux.O_WRONLY|linux.O_TRUNC, 0)
	p.Close(fd)
	st, _ := p.StatAt(linux.AT_FDCWD, "/tmp/x", true)
	if st.Size != 0 {
		t.Errorf("O_TRUNC left size %d", st.Size)
	}
	// O_APPEND appends.
	fd, _ = p.Open("/tmp/x", linux.O_WRONLY|linux.O_APPEND, 0)
	p.Write(fd, []byte("aa"))
	p.Write(fd, []byte("bb"))
	p.Close(fd)
	st, _ = p.StatAt(linux.AT_FDCWD, "/tmp/x", true)
	if st.Size != 4 {
		t.Errorf("append size = %d, want 4", st.Size)
	}
	// ENOENT without O_CREAT.
	if _, errno := p.Open("/tmp/nonexistent", linux.O_RDONLY, 0); errno != linux.ENOENT {
		t.Errorf("missing file: %v, want ENOENT", errno)
	}
	// O_DIRECTORY on a file.
	if _, errno := p.Open("/tmp/x", linux.O_RDONLY|linux.O_DIRECTORY, 0); errno != linux.ENOTDIR {
		t.Errorf("O_DIRECTORY on file: %v, want ENOTDIR", errno)
	}
}

func TestPreadPwriteIndependentOfOffset(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/p", linux.O_CREAT|linux.O_RDWR, 0o644)
	p.Write(fd, []byte("abcdefgh"))
	buf := make([]byte, 2)
	if n, errno := p.Pread64(fd, buf, 2); errno != 0 || string(buf[:n]) != "cd" {
		t.Fatalf("pread: %q %v", buf[:n], errno)
	}
	if _, errno := p.Pwrite64(fd, []byte("XY"), 0); errno != 0 {
		t.Fatalf("pwrite: %v", errno)
	}
	// Sequential offset unchanged (at end).
	if off, _ := p.Lseek(fd, 0, linux.SEEK_CUR); off != 8 {
		t.Errorf("offset changed by pread/pwrite: %d", off)
	}
}

func TestDirOps(t *testing.T) {
	_, p := newTestProc(t)
	if errno := p.MkdirAt(linux.AT_FDCWD, "/tmp/dir", 0o755); errno != 0 {
		t.Fatalf("mkdir: %v", errno)
	}
	if errno := p.MkdirAt(linux.AT_FDCWD, "/tmp/dir", 0o755); errno != linux.EEXIST {
		t.Fatalf("mkdir twice: %v", errno)
	}
	fd, _ := p.Open("/tmp/dir/f1", linux.O_CREAT, 0o644)
	p.Close(fd)
	fd, _ = p.Open("/tmp/dir/f2", linux.O_CREAT, 0o644)
	p.Close(fd)

	// getdents64
	dfd, errno := p.Open("/tmp/dir", linux.O_RDONLY|linux.O_DIRECTORY, 0)
	if errno != 0 {
		t.Fatalf("open dir: %v", errno)
	}
	buf := make([]byte, 4096)
	n, errno := p.Getdents64(dfd, buf)
	if errno != 0 || n == 0 {
		t.Fatalf("getdents: n=%d %v", n, errno)
	}
	if !bytes.Contains(buf[:n], []byte("f1")) || !bytes.Contains(buf[:n], []byte("f2")) {
		t.Error("getdents missing entries")
	}
	// Second call: end of directory.
	if n, _ := p.Getdents64(dfd, buf); n != 0 {
		t.Errorf("second getdents = %d, want 0", n)
	}

	// rmdir non-empty fails.
	if errno := p.UnlinkAt(linux.AT_FDCWD, "/tmp/dir", linux.AT_REMOVEDIR); errno != linux.ENOTEMPTY {
		t.Errorf("rmdir non-empty: %v", errno)
	}
	p.UnlinkAt(linux.AT_FDCWD, "/tmp/dir/f1", 0)
	p.UnlinkAt(linux.AT_FDCWD, "/tmp/dir/f2", 0)
	if errno := p.UnlinkAt(linux.AT_FDCWD, "/tmp/dir", linux.AT_REMOVEDIR); errno != 0 {
		t.Errorf("rmdir empty: %v", errno)
	}
}

func TestChdirAndRelativePaths(t *testing.T) {
	_, p := newTestProc(t)
	p.MkdirAt(linux.AT_FDCWD, "/tmp/wd", 0o755)
	if errno := p.Chdir("/tmp/wd"); errno != 0 {
		t.Fatalf("chdir: %v", errno)
	}
	if p.Cwd() != "/tmp/wd" {
		t.Fatalf("cwd = %q", p.Cwd())
	}
	fd, errno := p.Open("rel.txt", linux.O_CREAT|linux.O_WRONLY, 0o644)
	if errno != 0 {
		t.Fatalf("relative open: %v", errno)
	}
	p.Write(fd, []byte("x"))
	p.Close(fd)
	if _, errno := p.StatAt(linux.AT_FDCWD, "/tmp/wd/rel.txt", true); errno != 0 {
		t.Errorf("file not where expected: %v", errno)
	}
	if errno := p.Chdir(".."); errno != 0 {
		t.Fatalf("chdir ..: %v", errno)
	}
	if p.Cwd() != "/tmp" {
		t.Errorf("cwd after .. = %q", p.Cwd())
	}
	if errno := p.Chdir("/tmp/wd/rel.txt"); errno != linux.ENOTDIR {
		t.Errorf("chdir to file: %v", errno)
	}
}

func TestSymlinks(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/target", linux.O_CREAT|linux.O_WRONLY, 0o644)
	p.Write(fd, []byte("data"))
	p.Close(fd)
	if errno := p.SymlinkAt("/tmp/target", "/tmp/link"); errno != 0 {
		t.Fatalf("symlink: %v", errno)
	}
	// Follow.
	st, errno := p.StatAt(linux.AT_FDCWD, "/tmp/link", true)
	if errno != 0 || st.Mode&linux.S_IFMT != linux.S_IFREG {
		t.Fatalf("stat follow: %v mode=%o", errno, st.Mode)
	}
	// No follow.
	st, errno = p.StatAt(linux.AT_FDCWD, "/tmp/link", false)
	if errno != 0 || st.Mode&linux.S_IFMT != linux.S_IFLNK {
		t.Fatalf("lstat: %v mode=%o", errno, st.Mode)
	}
	if target, errno := p.ReadlinkAt(linux.AT_FDCWD, "/tmp/link"); errno != 0 || target != "/tmp/target" {
		t.Fatalf("readlink: %q %v", target, errno)
	}
	// Symlink loop.
	p.SymlinkAt("/tmp/loopB", "/tmp/loopA")
	p.SymlinkAt("/tmp/loopA", "/tmp/loopB")
	if _, errno := p.StatAt(linux.AT_FDCWD, "/tmp/loopA", true); errno != linux.ELOOP {
		t.Errorf("symlink loop: %v, want ELOOP", errno)
	}
}

func TestRenameAndLink(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/a", linux.O_CREAT|linux.O_WRONLY, 0o644)
	p.Write(fd, []byte("content"))
	p.Close(fd)
	if errno := p.RenameAt(linux.AT_FDCWD, "/tmp/a", linux.AT_FDCWD, "/tmp/b"); errno != 0 {
		t.Fatalf("rename: %v", errno)
	}
	if _, errno := p.StatAt(linux.AT_FDCWD, "/tmp/a", true); errno != linux.ENOENT {
		t.Error("old name still exists")
	}
	if errno := p.LinkAt("/tmp/b", "/tmp/c"); errno != 0 {
		t.Fatalf("link: %v", errno)
	}
	st, _ := p.StatAt(linux.AT_FDCWD, "/tmp/c", true)
	if st.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", st.Nlink)
	}
	p.UnlinkAt(linux.AT_FDCWD, "/tmp/b", 0)
	st, errno := p.StatAt(linux.AT_FDCWD, "/tmp/c", true)
	if errno != 0 || st.Nlink != 1 {
		t.Errorf("after unlink: %v nlink=%d", errno, st.Nlink)
	}
}

func TestDupAndFcntl(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/d", linux.O_CREAT|linux.O_RDWR, 0o644)
	d1, errno := p.Dup(fd)
	if errno != 0 {
		t.Fatalf("dup: %v", errno)
	}
	p.Write(fd, []byte("xy"))
	// Shared offset through dup.
	if off, _ := p.Lseek(d1, 0, linux.SEEK_CUR); off != 2 {
		t.Errorf("dup offset = %d, want 2", off)
	}
	// dup3 to a specific slot.
	if nfd, errno := p.Dup3(fd, 17, 0); errno != 0 || nfd != 17 {
		t.Fatalf("dup3: %d %v", nfd, errno)
	}
	// F_SETFD / F_GETFD.
	p.Fcntl(fd, linux.F_SETFD, linux.FD_CLOEXEC)
	if v, _ := p.Fcntl(fd, linux.F_GETFD, 0); v != linux.FD_CLOEXEC {
		t.Errorf("F_GETFD = %d", v)
	}
	// F_SETFL nonblock.
	p.Fcntl(fd, linux.F_SETFL, linux.O_NONBLOCK)
	if v, _ := p.Fcntl(fd, linux.F_GETFL, 0); v&linux.O_NONBLOCK == 0 {
		t.Error("O_NONBLOCK not set")
	}
	// dup2 self is EINVAL for dup3.
	if _, errno := p.Dup3(fd, fd, 0); errno != linux.EINVAL {
		t.Errorf("dup3 self: %v", errno)
	}
}

func TestPipeSemantics(t *testing.T) {
	_, p := newTestProc(t)
	rfd, wfd, errno := p.Pipe2(0)
	if errno != 0 {
		t.Fatalf("pipe2: %v", errno)
	}
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := p.Read(rfd, buf)
		done <- string(buf[:n])
	}()
	time.Sleep(time.Millisecond)
	p.Write(wfd, []byte("ping"))
	if got := <-done; got != "ping" {
		t.Fatalf("pipe read = %q", got)
	}
	// EOF after writer close.
	p.Close(wfd)
	buf := make([]byte, 4)
	if n, errno := p.Read(rfd, buf); n != 0 || errno != 0 {
		t.Fatalf("EOF read: n=%d %v", n, errno)
	}
	// EPIPE + SIGPIPE after reader close.
	rfd2, wfd2, _ := p.Pipe2(0)
	p.Close(rfd2)
	if _, errno := p.Write(wfd2, []byte("x")); errno != linux.EPIPE {
		t.Fatalf("write to closed pipe: %v", errno)
	}
	if p.PendingSet()&(1<<(linux.SIGPIPE-1)) == 0 {
		t.Error("SIGPIPE not pending after EPIPE")
	}
}

func TestPipeNonblock(t *testing.T) {
	_, p := newTestProc(t)
	rfd, wfd, _ := p.Pipe2(linux.O_NONBLOCK)
	buf := make([]byte, 4)
	if _, errno := p.Read(rfd, buf); errno != linux.EAGAIN {
		t.Fatalf("nonblock empty read: %v", errno)
	}
	// Fill the pipe.
	big := make([]byte, 1<<20)
	n, errno := p.Write(wfd, big)
	if errno != 0 || n == len(big) {
		t.Fatalf("nonblock write filled: n=%d %v", n, errno)
	}
	if _, errno := p.Write(wfd, []byte("x")); errno != linux.EAGAIN {
		t.Fatalf("nonblock full write: %v", errno)
	}
}

func TestForkExitWait(t *testing.T) {
	_, p := newTestProc(t)
	c := p.Fork()
	if c.PID == p.PID || c.Getppid() != p.PID {
		t.Fatalf("fork identity: pid=%d ppid=%d", c.PID, c.Getppid())
	}
	go func() {
		time.Sleep(time.Millisecond)
		c.Exit(linux.WaitStatusExited(7))
	}()
	pid, status, _, errno := p.Wait4(-1, 0)
	if errno != 0 || pid != c.PID {
		t.Fatalf("wait4: pid=%d %v", pid, errno)
	}
	if !linux.WIFEXITED(status) || linux.WEXITSTATUS(status) != 7 {
		t.Fatalf("status = %#x", status)
	}
	// SIGCHLD was posted.
	if p.PendingSet()&(1<<(linux.SIGCHLD-1)) == 0 {
		t.Error("SIGCHLD not pending in parent")
	}
	// No more children.
	if _, _, _, errno := p.Wait4(-1, 0); errno != linux.ECHILD {
		t.Errorf("wait with no children: %v", errno)
	}
}

func TestWaitWNOHANG(t *testing.T) {
	_, p := newTestProc(t)
	c := p.Fork()
	pid, _, _, errno := p.Wait4(-1, linux.WNOHANG)
	if errno != 0 || pid != 0 {
		t.Fatalf("WNOHANG with running child: pid=%d %v", pid, errno)
	}
	c.Exit(0)
	pid, _, _, errno = p.Wait4(c.PID, linux.WNOHANG)
	if errno != 0 || pid != c.PID {
		t.Fatalf("WNOHANG with zombie: pid=%d %v", pid, errno)
	}
}

func TestForkSharesFileDescription(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/shared", linux.O_CREAT|linux.O_RDWR, 0o644)
	c := p.Fork()
	// Child writes through the shared description.
	cf, errno := c.FDs.Get(fd)
	if errno != 0 {
		t.Fatalf("child missing fd: %v", errno)
	}
	cf.Write([]byte("abc"))
	// Parent sees the advanced offset.
	if off, _ := p.Lseek(fd, 0, linux.SEEK_CUR); off != 3 {
		t.Errorf("parent offset = %d, want 3 (shared description)", off)
	}
	c.Exit(0)
	p.Wait4(-1, 0)
}

func TestThreadGroupExit(t *testing.T) {
	k, p := newTestProc(t)
	t1 := p.CloneThread()
	if t1.TGID != p.PID {
		t.Fatalf("thread tgid = %d, want %d", t1.TGID, p.PID)
	}
	if t1.FDs != p.FDs {
		t.Fatal("thread must share fd table")
	}
	before := k.ProcessCount()
	t1.Exit(0) // non-final thread: no zombie
	if k.ProcessCount() != before-1 {
		t.Errorf("thread exit did not remove the task")
	}
	if !p.Alive() {
		t.Error("leader died with thread exit")
	}
}

func TestSignalsMaskAndDelivery(t *testing.T) {
	_, p := newTestProc(t)
	// Register a handler for SIGUSR1.
	act := linux.Sigaction{Handler: 1234}
	if _, errno := p.SigAction(linux.SIGUSR1, &act); errno != 0 {
		t.Fatalf("sigaction: %v", errno)
	}
	// Block it, post it, check pending but not deliverable.
	mask := uint64(1) << (linux.SIGUSR1 - 1)
	p.SigProcMask(linux.SIG_BLOCK, &mask)
	p.PostSignal(linux.SIGUSR1)
	if !strings.Contains("", "") && p.HasDeliverableSignal() {
		t.Fatal("blocked signal reported deliverable")
	}
	if p.PendingSet()&mask == 0 {
		t.Fatal("signal not pending")
	}
	// Unblock: now deliverable with the registered handler.
	p.SigProcMask(linux.SIG_UNBLOCK, &mask)
	ds, ok := p.NextDeliverableSignal()
	if !ok || ds.Sig != linux.SIGUSR1 || ds.Action.Handler != 1234 {
		t.Fatalf("deliverable = %+v ok=%v", ds, ok)
	}
	// Queue drained.
	if _, ok := p.NextDeliverableSignal(); ok {
		t.Fatal("signal delivered twice")
	}
}

func TestSignalSIGKILLUncatchable(t *testing.T) {
	_, p := newTestProc(t)
	act := linux.Sigaction{Handler: 99}
	if _, errno := p.SigAction(linux.SIGKILL, &act); errno != linux.EINVAL {
		t.Errorf("sigaction(SIGKILL): %v, want EINVAL", errno)
	}
	mask := uint64(1) << (linux.SIGKILL - 1)
	p.SigProcMask(linux.SIG_BLOCK, &mask)
	p.PostSignal(linux.SIGKILL)
	if !p.Killed() {
		t.Error("SIGKILL not latched")
	}
	if !p.HasDeliverableSignal() {
		t.Error("SIGKILL must be deliverable despite mask")
	}
}

func TestSignalDefaultIgnored(t *testing.T) {
	_, p := newTestProc(t)
	p.PostSignal(linux.SIGCHLD) // default ignore
	if _, ok := p.NextDeliverableSignal(); ok {
		t.Error("SIGCHLD with SIG_DFL must be discarded at delivery")
	}
	// SIG_IGN explicit.
	act := linux.Sigaction{Handler: linux.SIG_IGN}
	p.SigAction(linux.SIGUSR2, &act)
	p.PostSignal(linux.SIGUSR2)
	if _, ok := p.NextDeliverableSignal(); ok {
		t.Error("ignored signal delivered")
	}
}

func TestKillProcessGroup(t *testing.T) {
	_, p := newTestProc(t)
	c1 := p.Fork()
	c2 := p.Fork()
	c2.Setpgid(0, c1.PID) // move c2 into c1's new group
	c1.Setpgid(0, 0)
	c2.Setpgid(0, c1.PID)
	errno := p.Kill(-c1.PID, linux.SIGTERM)
	if errno != 0 {
		t.Fatalf("kill group: %v", errno)
	}
	if c1.PendingSet()&(1<<(linux.SIGTERM-1)) == 0 {
		t.Error("c1 missing SIGTERM")
	}
	if c2.PendingSet()&(1<<(linux.SIGTERM-1)) == 0 {
		t.Error("c2 missing SIGTERM")
	}
	if p.PendingSet()&(1<<(linux.SIGTERM-1)) != 0 {
		t.Error("parent got group signal")
	}
}

func TestSigTimedWait(t *testing.T) {
	_, p := newTestProc(t)
	go func() {
		time.Sleep(2 * time.Millisecond)
		p.PostSignal(linux.SIGUSR1)
	}()
	set := uint64(1) << (linux.SIGUSR1 - 1)
	sig, errno := p.SigTimedWait(set, &linux.Timespec{Sec: 5})
	if errno != 0 || sig != linux.SIGUSR1 {
		t.Fatalf("sigtimedwait: sig=%d %v", sig, errno)
	}
	// Timeout path.
	_, errno = p.SigTimedWait(set, &linux.Timespec{Nsec: 1e6})
	if errno != linux.EAGAIN {
		t.Fatalf("sigtimedwait timeout: %v", errno)
	}
}

func TestFutexWaitWake(t *testing.T) {
	k, _ := newTestProc(t)
	space := new(int)
	val := uint32(1)
	var wg sync.WaitGroup
	woken := make(chan linux.Errno, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			woken <- k.FutexWait(space, 64, 1, func() uint32 { return val }, nil, nil)
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if n := k.FutexWake(space, 64, 64); n == 0 {
		t.Error("woke 0 waiters")
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if e := <-woken; e != 0 {
			t.Errorf("waiter %d: %v", i, e)
		}
	}
	// Value mismatch: immediate EAGAIN.
	if e := k.FutexWait(space, 64, 2, func() uint32 { return val }, nil, nil); e != linux.EAGAIN {
		t.Errorf("mismatch wait: %v", e)
	}
	// Timeout.
	if e := k.FutexWait(space, 64, 1, func() uint32 { return val }, &linux.Timespec{Nsec: 1e6}, nil); e != linux.ETIMEDOUT {
		t.Errorf("timeout wait: %v", e)
	}
}

func TestFutexSpacesIsolated(t *testing.T) {
	k, _ := newTestProc(t)
	a, b := new(int), new(int)
	done := make(chan struct{})
	go func() {
		k.FutexWait(a, 0, 0, func() uint32 { return 0 }, nil, nil)
		close(done)
	}()
	time.Sleep(time.Millisecond)
	k.FutexWake(b, 0, 64) // different space: must not wake
	select {
	case <-done:
		t.Fatal("futex woke across spaces")
	case <-time.After(5 * time.Millisecond):
	}
	k.FutexWake(a, 0, 64)
	<-done
}

func TestSocketsStreamLoopback(t *testing.T) {
	_, p := newTestProc(t)
	srv, errno := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno != 0 {
		t.Fatalf("socket: %v", errno)
	}
	addr := SockAddr{Family: linux.AF_INET, Port: 8080}
	if errno := p.Bind(srv, addr); errno != 0 {
		t.Fatalf("bind: %v", errno)
	}
	if errno := p.Listen(srv, 8); errno != 0 {
		t.Fatalf("listen: %v", errno)
	}

	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno := p.Connect(cli, addr); errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	conn, peer, errno := p.Accept(srv, 0)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	_ = peer

	if _, errno := p.SendTo(cli, []byte("GET"), 0, nil); errno != 0 {
		t.Fatalf("send: %v", errno)
	}
	buf := make([]byte, 16)
	n, _, errno := p.RecvFrom(conn, buf, 0)
	if errno != 0 || string(buf[:n]) != "GET" {
		t.Fatalf("recv: %q %v", buf[:n], errno)
	}
	// Echo back.
	p.SendTo(conn, []byte("OK"), 0, nil)
	n, _, _ = p.RecvFrom(cli, buf, 0)
	if string(buf[:n]) != "OK" {
		t.Fatalf("echo: %q", buf[:n])
	}
	// Close server conn: client sees EOF.
	p.Close(conn)
	if n, _, errno := p.RecvFrom(cli, buf, 0); n != 0 || errno != 0 {
		t.Fatalf("EOF: n=%d %v", n, errno)
	}
	// Connect to unbound port refused.
	c2, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno := p.Connect(c2, SockAddr{Family: linux.AF_INET, Port: 9999}); errno != linux.ECONNREFUSED {
		t.Errorf("connect unbound: %v", errno)
	}
	// Address in use.
	s2, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	p.Bind(s2, addr)
	if errno := p.Listen(s2, 1); errno != linux.EADDRINUSE {
		t.Errorf("double listen: %v", errno)
	}
}

func TestSocketPair(t *testing.T) {
	_, p := newTestProc(t)
	a, b, errno := p.SocketPair(linux.AF_UNIX, linux.SOCK_STREAM, 0)
	if errno != 0 {
		t.Fatalf("socketpair: %v", errno)
	}
	p.Write(a, []byte("hello"))
	buf := make([]byte, 8)
	n, errno := p.Read(b, buf)
	if errno != 0 || string(buf[:n]) != "hello" {
		t.Fatalf("socketpair read: %q %v", buf[:n], errno)
	}
}

func TestPoll(t *testing.T) {
	_, p := newTestProc(t)
	rfd, wfd, _ := p.Pipe2(0)
	fds := []PollFD{{FD: rfd, Events: linux.POLLIN}}
	// Not ready: zero timeout.
	n, errno := p.Poll(fds, 0)
	if errno != 0 || n != 0 {
		t.Fatalf("poll empty: %d %v", n, errno)
	}
	p.Write(wfd, []byte("x"))
	n, errno = p.Poll(fds, 0)
	if errno != 0 || n != 1 || fds[0].Revents&linux.POLLIN == 0 {
		t.Fatalf("poll ready: %d %v revents=%x", n, errno, fds[0].Revents)
	}
	// Bad fd reports POLLNVAL.
	fds = []PollFD{{FD: 999, Events: linux.POLLIN}}
	n, _ = p.Poll(fds, 0)
	if n != 1 || fds[0].Revents != linux.POLLNVAL {
		t.Errorf("POLLNVAL: %d %x", n, fds[0].Revents)
	}
}

func TestEpoll(t *testing.T) {
	_, p := newTestProc(t)
	epfd, errno := p.EpollCreate(0)
	if errno != 0 {
		t.Fatalf("epoll_create: %v", errno)
	}
	rfd, wfd, _ := p.Pipe2(0)
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, rfd, linux.EPOLLIN, 42); errno != 0 {
		t.Fatalf("epoll_ctl: %v", errno)
	}
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, rfd, linux.EPOLLIN, 42); errno != linux.EEXIST {
		t.Errorf("double add: %v", errno)
	}
	evs, _ := p.EpollWait(epfd, 8, 0)
	if len(evs) != 0 {
		t.Fatalf("epoll before data: %d events", len(evs))
	}
	p.Write(wfd, []byte("z"))
	evs, errno = p.EpollWait(epfd, 8, int64(time.Second))
	if errno != 0 || len(evs) != 1 || evs[0].Data != 42 {
		t.Fatalf("epoll after write: %v %+v", errno, evs)
	}
}

func TestProcSelfAndDevices(t *testing.T) {
	_, p := newTestProc(t)
	fd, errno := p.Open("/proc/self/status", linux.O_RDONLY, 0)
	if errno != 0 {
		t.Fatalf("open /proc/self/status: %v", errno)
	}
	buf := make([]byte, 512)
	n, _ := p.Read(fd, buf)
	if !bytes.Contains(buf[:n], []byte("Name:\ttest")) {
		t.Errorf("status content: %q", buf[:n])
	}
	// /dev/null swallows writes, EOF on read.
	nfd, _ := p.Open("/dev/null", linux.O_RDWR, 0)
	if n, _ := p.Write(nfd, []byte("zzz")); n != 3 {
		t.Error("null write")
	}
	if n, _ := p.Read(nfd, buf); n != 0 {
		t.Error("null read")
	}
	// /dev/zero yields zeros.
	zfd, _ := p.Open("/dev/zero", linux.O_RDONLY, 0)
	n, _ = p.Read(zfd, buf[:8])
	if n != 8 || !bytes.Equal(buf[:8], make([]byte, 8)) {
		t.Error("zero read")
	}
}

func TestConsoleIO(t *testing.T) {
	k, p := newTestProc(t)
	if n, errno := p.Write(1, []byte("stdout text")); errno != 0 || n != 11 {
		t.Fatalf("stdout write: %d %v", n, errno)
	}
	if got := string(k.Console.Output()); got != "stdout text" {
		t.Fatalf("console output = %q", got)
	}
	k.Console.FeedInput([]byte("typed\n"))
	buf := make([]byte, 16)
	n, errno := p.Read(0, buf)
	if errno != 0 || string(buf[:n]) != "typed\n" {
		t.Fatalf("stdin read: %q %v", buf[:n], errno)
	}
}

func TestUmaskAndCreds(t *testing.T) {
	_, p := newTestProc(t)
	old := p.Umask(0o077)
	if old != 0o022 {
		t.Errorf("default umask = %o", old)
	}
	fd, _ := p.Open("/tmp/masked", linux.O_CREAT, 0o666)
	p.Close(fd)
	st, _ := p.StatAt(linux.AT_FDCWD, "/tmp/masked", true)
	if st.Mode&0o777 != 0o600 {
		t.Errorf("masked mode = %o, want 600", st.Mode&0o777)
	}
	// setuid drops privileges; re-raising fails.
	if errno := p.SetUID(1000); errno != 0 {
		t.Fatalf("setuid: %v", errno)
	}
	if errno := p.SetUID(0); errno != linux.EPERM {
		t.Errorf("re-raise uid: %v", errno)
	}
	u, eu, _, _ := p.Creds()
	if u != 1000 || eu != 1000 {
		t.Errorf("creds = %d/%d", u, eu)
	}
}

func TestExecResetsState(t *testing.T) {
	_, p := newTestProc(t)
	fd, _ := p.Open("/tmp/ce", linux.O_CREAT|linux.O_CLOEXEC, 0o644)
	keep, _ := p.Open("/tmp/keep", linux.O_CREAT, 0o644)
	act := linux.Sigaction{Handler: 55}
	p.SigAction(linux.SIGUSR1, &act)
	ign := linux.Sigaction{Handler: linux.SIG_IGN}
	p.SigAction(linux.SIGUSR2, &ign)

	p.Exec("newprog", []string{"newprog", "arg"}, []string{"A=1"})

	if _, errno := p.FDs.Get(fd); errno != linux.EBADF {
		t.Error("cloexec fd survived exec")
	}
	if _, errno := p.FDs.Get(keep); errno != 0 {
		t.Error("normal fd closed by exec")
	}
	a, _ := p.SigAction(linux.SIGUSR1, nil)
	if a.Handler != linux.SIG_DFL {
		t.Error("caught handler survived exec")
	}
	a, _ = p.SigAction(linux.SIGUSR2, nil)
	if a.Handler != linux.SIG_IGN {
		t.Error("SIG_IGN did not survive exec")
	}
	if p.Comm() != "newprog" || len(p.Argv()) != 2 {
		t.Error("argv not replaced")
	}
}

func TestPrlimitNOFILE(t *testing.T) {
	_, p := newTestProc(t)
	lim := [2]uint64{16, 16}
	if _, errno := p.Prlimit(linux.RLIMIT_NOFILE, &lim); errno != 0 {
		t.Fatalf("prlimit: %v", errno)
	}
	var fds []int32
	for {
		fd, errno := p.Open("/dev/null", linux.O_RDONLY, 0)
		if errno != 0 {
			if errno != linux.EMFILE {
				t.Fatalf("unexpected errno %v", errno)
			}
			break
		}
		fds = append(fds, fd)
		if len(fds) > 32 {
			t.Fatal("NOFILE limit not enforced")
		}
	}
}

func TestNormalizePathQuick(t *testing.T) {
	// Property: normalized paths never contain "." or ".." components and
	// always start with "/".
	f := func(segs []uint8) bool {
		parts := []string{"", "a", "b", ".", ".."}
		path := ""
		for _, s := range segs {
			path += "/" + parts[int(s)%len(parts)]
		}
		norm := normalizePath(path)
		if !strings.HasPrefix(norm, "/") {
			return false
		}
		for _, c := range strings.Split(norm, "/") {
			if c == "." || c == ".." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClockAndUname(t *testing.T) {
	k, _ := newTestProc(t)
	m1, errno := k.ClockGettime(linux.CLOCK_MONOTONIC)
	if errno != 0 {
		t.Fatalf("clock_gettime: %v", errno)
	}
	time.Sleep(time.Millisecond)
	m2, _ := k.ClockGettime(linux.CLOCK_MONOTONIC)
	if m2.Nanos() <= m1.Nanos() {
		t.Error("monotonic clock not advancing")
	}
	if _, errno := k.ClockGettime(99); errno != linux.EINVAL {
		t.Errorf("bad clock id: %v", errno)
	}
	u := k.Uname()
	if u.Sysname != "Linux" || u.Machine != "wasm32" {
		t.Errorf("uname: %+v", u)
	}
}

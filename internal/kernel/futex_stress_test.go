package kernel

import (
	"sync"
	"sync/atomic"
	"testing"

	"gowali/internal/linux"
)

// TestFutexShardedStress exercises concurrent wait/wake traffic across
// many (space, addr) keys — and therefore across futex shards — under
// the race detector. Each key gets one waiter and one waker doing a full
// handshake; on top, wake-with-no-waiter and wait-with-changed-value
// fast paths hammer the shard maps from every goroutine.
func TestFutexShardedStress(t *testing.T) {
	k := NewKernel()
	const keys = 64
	spaces := make([]*int, keys)
	words := make([]atomic.Uint32, keys)
	for i := range spaces {
		spaces[i] = new(int)
	}

	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		i := i
		// Addresses deliberately collide across spaces: identical addr on
		// different memories must still land in (usually) different
		// shards and never rendezvous.
		addr := uint32(64 * (i % 8))
		load := func() uint32 { return words[i].Load() }

		wg.Add(2)
		go func() { // waiter
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for words[i].Load() == uint32(r) {
					k.FutexWait(spaces[i], addr, uint32(r), load, nil, nil)
				}
			}
		}()
		go func() { // waker
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				words[i].Store(uint32(r + 1))
				k.FutexWake(spaces[i], addr, 1)
				// Fast paths against a neighboring key's shard.
				k.FutexWake(spaces[(i+1)%keys], addr, 1)
				k.FutexWait(spaces[i], addr, uint32(r), load, nil, nil) // EAGAIN
			}
		}()
	}
	wg.Wait()

	// All queues must have been torn down (no waiters remain).
	for s := range k.futexes {
		sh := &k.futexes[s]
		sh.mu.Lock()
		if len(sh.m) != 0 {
			t.Errorf("shard %d retains %d futex queues after stress", s, len(sh.m))
		}
		sh.mu.Unlock()
	}
}

// TestFutexTimeoutAcrossShards: timed waits expire independently per
// shard and leave no queue behind.
func TestFutexTimeoutAcrossShards(t *testing.T) {
	k := NewKernel()
	var wg sync.WaitGroup
	var word atomic.Uint32
	for i := 0; i < 8; i++ {
		space := new(int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			to := linux.TimespecFromNanos(int64(2e6)) // 2ms
			if errno := k.FutexWait(space, 0, 0, func() uint32 { return word.Load() }, &to, nil); errno != linux.ETIMEDOUT {
				t.Errorf("timed wait: got %v, want ETIMEDOUT", errno)
			}
		}()
	}
	wg.Wait()
	for s := range k.futexes {
		sh := &k.futexes[s]
		sh.mu.Lock()
		if len(sh.m) != 0 {
			t.Errorf("shard %d retains queues after timeouts", s)
		}
		sh.mu.Unlock()
	}
}

// TestGetRandomParallel: concurrent /dev/urandom readers draw from
// independent pooled streams (no shared-RNG serialization, no races),
// and every read fills its buffer.
func TestGetRandomParallel(t *testing.T) {
	k := NewKernel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 200; i++ {
				if n := k.GetRandom(buf); n != len(buf) {
					t.Errorf("GetRandom returned %d", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Still deterministic for a fresh single-reader kernel: same first
	// bytes on two boots.
	a, b := make([]byte, 16), make([]byte, 16)
	NewKernel().GetRandom(a)
	NewKernel().GetRandom(b)
	if string(a) != string(b) {
		t.Error("single-reader entropy is not reproducible across boots")
	}
}

// TestWait4NoThunderingHerd: a process exit wakes its own parent's wait,
// not unrelated waiters — unrelated parents with live children must keep
// blocking (WNOHANG polls confirm) while the real parent's wait4
// completes promptly.
func TestWait4NoThunderingHerd(t *testing.T) {
	k := NewKernel()
	parentA := k.NewProcess("pa", nil, nil)
	parentB := k.NewProcess("pb", nil, nil)
	childA := parentA.Fork()
	childB := parentB.Fork()

	done := make(chan int32, 1)
	go func() {
		pid, _, _, _ := parentA.Wait4(-1, 0)
		done <- pid
	}()

	childA.Exit(0)
	if pid := <-done; pid != childA.PID {
		t.Fatalf("parent A reaped %d, want %d", pid, childA.PID)
	}
	// Parent B's child is untouched: nothing to reap, wait4 would block.
	if pid, _, _, errno := parentB.Wait4(-1, linux.WNOHANG); errno != 0 || pid != 0 {
		t.Fatalf("parent B: pid=%d errno=%v, want 0,0", pid, errno)
	}
	childB.Exit(0)
	if pid, _, _, errno := parentB.Wait4(-1, 0); errno != 0 || pid != childB.PID {
		t.Fatalf("parent B reap: pid=%d errno=%v", pid, errno)
	}
}

package kernel

import (
	"strings"
	"testing"

	"gowali/internal/obs"
)

// TestShutdownUnregistersObsGauges: a kernel attached to a shared
// registry exports its process-count gauge for its lifetime only —
// Shutdown must unregister it, or a long-lived registry keeps sampling
// (and keeping alive) dead kernels. Idempotent on double Shutdown.
func TestShutdownUnregistersObsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	k := NewKernel()
	k.SetObs(nil, reg)

	gauges := func() []string {
		var names []string
		for name := range reg.Snapshot().Gauges {
			if strings.HasPrefix(name, "wali_kernel_processes{") {
				names = append(names, name)
			}
		}
		return names
	}
	if got := gauges(); len(got) != 1 {
		t.Fatalf("after SetObs: gauges = %v, want exactly one", got)
	}
	k.Shutdown()
	if got := gauges(); len(got) != 0 {
		t.Fatalf("after Shutdown: gauges = %v, want none", got)
	}
	k.Shutdown() // idempotent
	if got := gauges(); len(got) != 0 {
		t.Fatalf("after double Shutdown: gauges = %v, want none", got)
	}
}

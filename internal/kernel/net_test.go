package kernel

import (
	"sync"
	"testing"
	"time"

	"gowali/internal/kernel/net"
	"gowali/internal/linux"
)

// --- socket options: the golden matrix ---

func TestSockOptGolden(t *testing.T) {
	_, p := newTestProc(t)
	fd, errno := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno != 0 {
		t.Fatalf("socket: %v", errno)
	}

	// The options libc and real servers set must succeed.
	accepted := []struct{ level, opt int32 }{
		{linux.SOL_SOCKET, linux.SO_REUSEADDR},
		{linux.SOL_SOCKET, linux.SO_REUSEPORT},
		{linux.SOL_SOCKET, linux.SO_KEEPALIVE},
		{linux.SOL_SOCKET, linux.SO_SNDBUF},
		{linux.SOL_SOCKET, linux.SO_RCVBUF},
		{linux.SOL_SOCKET, linux.SO_RCVTIMEO},
		{linux.SOL_SOCKET, linux.SO_SNDTIMEO},
		{linux.SOL_SOCKET, linux.SO_LINGER},
		{linux.SOL_SOCKET, linux.SO_BROADCAST},
		{linux.SOL_SOCKET, linux.SO_DONTROUTE},
		{linux.SOL_SOCKET, linux.SO_OOBINLINE},
		{linux.SOL_SOCKET, linux.SO_PRIORITY},
		{linux.IPPROTO_IP, linux.IP_TOS},
		{linux.IPPROTO_IP, linux.IP_TTL},
		{linux.IPPROTO_TCP, linux.TCP_NODELAY},
		{linux.IPPROTO_TCP, linux.TCP_KEEPIDLE},
		{linux.IPPROTO_TCP, linux.TCP_KEEPINTVL},
		{linux.IPPROTO_TCP, linux.TCP_KEEPCNT},
		{linux.IPPROTO_TCP, linux.TCP_QUICKACK},
		{linux.IPPROTO_IPV6, linux.IPV6_V6ONLY},
	}
	for _, c := range accepted {
		if errno := p.SetSockOpt(fd, c.level, c.opt, 1); errno != 0 {
			t.Errorf("setsockopt(%d,%d): %v, want success", c.level, c.opt, errno)
		}
		if v, errno := p.GetSockOpt(fd, c.level, c.opt); errno != 0 || v != 1 {
			t.Errorf("getsockopt(%d,%d): %d %v, want 1", c.level, c.opt, v, errno)
		}
	}

	// Read-only and synthesized options.
	if v, errno := p.GetSockOpt(fd, linux.SOL_SOCKET, linux.SO_TYPE); errno != 0 || v != linux.SOCK_STREAM {
		t.Errorf("SO_TYPE = %d %v", v, errno)
	}
	if v, errno := p.GetSockOpt(fd, linux.SOL_SOCKET, linux.SO_ERROR); errno != 0 || v != 0 {
		t.Errorf("SO_ERROR = %d %v", v, errno)
	}
	if v, errno := p.GetSockOpt(fd, linux.SOL_SOCKET, linux.SO_ACCEPTCONN); errno != 0 || v != 0 {
		t.Errorf("SO_ACCEPTCONN = %d %v", v, errno)
	}
	if errno := p.SetSockOpt(fd, linux.SOL_SOCKET, linux.SO_ERROR, 1); errno != linux.ENOPROTOOPT {
		t.Errorf("set SO_ERROR: %v, want ENOPROTOOPT", errno)
	}
	// Unset buffer sizes report the real pipe capacity.
	fd2, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if v, _ := p.GetSockOpt(fd2, linux.SOL_SOCKET, linux.SO_SNDBUF); v != 64*1024 {
		t.Errorf("default SO_SNDBUF = %d", v)
	}

	// Unknown options fail loudly instead of silently recording.
	if errno := p.SetSockOpt(fd, linux.SOL_SOCKET, 999, 1); errno != linux.ENOPROTOOPT {
		t.Errorf("unknown SOL_SOCKET opt: %v, want ENOPROTOOPT", errno)
	}
	if errno := p.SetSockOpt(fd, 999, 1, 1); errno != linux.ENOPROTOOPT {
		t.Errorf("unknown level: %v, want ENOPROTOOPT", errno)
	}
	if _, errno := p.GetSockOpt(fd, linux.IPPROTO_TCP, 999); errno != linux.ENOPROTOOPT {
		t.Errorf("unknown TCP opt: %v, want ENOPROTOOPT", errno)
	}

	// SO_ACCEPTCONN flips on a listener.
	p.Bind(fd, SockAddr{Family: linux.AF_INET, Port: 8088})
	p.Listen(fd, 1)
	if v, _ := p.GetSockOpt(fd, linux.SOL_SOCKET, linux.SO_ACCEPTCONN); v != 1 {
		t.Errorf("listener SO_ACCEPTCONN = %d", v)
	}
}

// --- epoll staleness: closed and dup2'd-over fds must stop reporting ---

func TestEpollDeregisterOnClose(t *testing.T) {
	_, p := newTestProc(t)
	epfd, _ := p.EpollCreate(0)
	rfd, wfd, _ := p.Pipe2(0)
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, rfd, linux.EPOLLIN, 7); errno != 0 {
		t.Fatalf("epoll_ctl: %v", errno)
	}
	p.Write(wfd, []byte("x"))
	if evs, _ := p.EpollWait(epfd, 8, 0); len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}

	// Close the registered fd: its interest must vanish with it.
	p.Close(rfd)
	if evs, _ := p.EpollWait(epfd, 8, 0); len(evs) != 0 {
		t.Fatalf("closed fd still reports %d events", len(evs))
	}
	// A recycled fd number must not inherit the dead registration: a
	// fresh, readable pipe landing on the same number reports nothing
	// until it is explicitly re-added.
	rfd2, wfd2, _ := p.Pipe2(0)
	if rfd2 != rfd {
		t.Fatalf("expected fd reuse (%d vs %d)", rfd2, rfd)
	}
	p.Write(wfd2, []byte("y"))
	if evs, _ := p.EpollWait(epfd, 8, 0); len(evs) != 0 {
		t.Fatalf("recycled fd inherited stale interest: %d events", len(evs))
	}
	// EPOLL_CTL_DEL of the closed registration is ENOENT, as on Linux.
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_DEL, rfd, 0, 0); errno != linux.ENOENT {
		t.Errorf("del after close: %v, want ENOENT", errno)
	}
	p.Close(wfd)
	p.Close(wfd2)
}

func TestEpollDeregisterOnDup2(t *testing.T) {
	_, p := newTestProc(t)
	epfd, _ := p.EpollCreate(0)
	rfd, wfd, _ := p.Pipe2(0)
	p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, rfd, linux.EPOLLIN, 7)
	p.Write(wfd, []byte("x"))

	// dup2 a different (readable) pipe over the registered fd: the old
	// registration must not survive onto the new file.
	rfd2, wfd2, _ := p.Pipe2(0)
	p.Write(wfd2, []byte("y"))
	if _, errno := p.Dup3(rfd2, rfd, 0); errno != 0 {
		t.Fatalf("dup3: %v", errno)
	}
	if evs, _ := p.EpollWait(epfd, 8, 0); len(evs) != 0 {
		t.Fatalf("dup2'd-over fd still reports %d events", len(evs))
	}
	// Adding the epoll fd to itself is rejected.
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, epfd, linux.EPOLLIN, 0); errno != linux.EINVAL {
		t.Errorf("self-add: %v, want EINVAL", errno)
	}
	p.Close(rfd2)
	p.Close(wfd2)
}

// --- event-driven readiness ---

// A poll blocked on an empty socket must wake when data arrives —
// promptly (event-driven), not at a sampling interval. The bound here
// is deliberately loose for loaded CI machines; bench.NetEcho carries
// the precise numbers.
func TestPollWakesOnSocketData(t *testing.T) {
	_, p := newTestProc(t)
	srv, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	addr := SockAddr{Family: linux.AF_INET, Port: 8090}
	p.Bind(srv, addr)
	p.Listen(srv, 4)
	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno := p.Connect(cli, addr); errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	conn, _, errno := p.Accept(srv, 0)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}

	type res struct {
		n     int
		errno linux.Errno
		late  time.Duration
	}
	done := make(chan res, 1)
	start := make(chan struct{})
	go func() {
		fds := []PollFD{{FD: conn, Events: linux.POLLIN}}
		close(start)
		t0 := time.Now()
		n, errno := p.Poll(fds, int64(5*time.Second))
		done <- res{n, errno, time.Since(t0)}
	}()
	<-start
	time.Sleep(2 * time.Millisecond) // let the poller block
	wrote := time.Now()
	if _, errno := p.SendTo(cli, []byte("wake"), 0, nil); errno != 0 {
		t.Fatalf("send: %v", errno)
	}
	r := <-done
	latency := time.Since(wrote)
	if r.errno != 0 || r.n != 1 {
		t.Fatalf("poll: n=%d %v", r.n, r.errno)
	}
	if latency > 50*time.Millisecond {
		t.Fatalf("poll wakeup took %v — readiness looks sampled, not event-driven", latency)
	}
}

// A poll blocked forever must return EINTR promptly when a signal
// lands (the event path registers on the signal queue).
func TestPollSignalInterrupt(t *testing.T) {
	_, p := newTestProc(t)
	rfd, _, _ := p.Pipe2(0)
	done := make(chan linux.Errno, 1)
	go func() {
		fds := []PollFD{{FD: rfd, Events: linux.POLLIN}}
		_, errno := p.Poll(fds, -1)
		done <- errno
	}()
	time.Sleep(2 * time.Millisecond)
	p.PostSignal(linux.SIGUSR1)
	select {
	case errno := <-done:
		if errno != linux.EINTR {
			t.Fatalf("poll: %v, want EINTR", errno)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal never interrupted the blocked poll")
	}
}

// Epoll over sockets wakes event-driven too.
func TestEpollWakesOnSocketData(t *testing.T) {
	_, p := newTestProc(t)
	srv, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	addr := SockAddr{Family: linux.AF_INET, Port: 8091}
	p.Bind(srv, addr)
	p.Listen(srv, 4)
	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	p.Connect(cli, addr)
	conn, _, _ := p.Accept(srv, 0)

	epfd, _ := p.EpollCreate(0)
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, conn, linux.EPOLLIN, 99); errno != 0 {
		t.Fatalf("epoll_ctl: %v", errno)
	}
	done := make(chan []EpollEvent, 1)
	go func() {
		evs, _ := p.EpollWait(epfd, 8, int64(5*time.Second))
		done <- evs
	}()
	time.Sleep(2 * time.Millisecond)
	p.SendTo(cli, []byte("w"), 0, nil)
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].Data != 99 {
			t.Fatalf("epoll events: %+v", evs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("epoll never woke")
	}
}

// --- cross-kernel traffic over a switch (the -race acceptance path) ---

func TestSwitchCrossKernelExchange(t *testing.T) {
	sw := net.NewSwitch()
	nodeA, err := sw.Node("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := sw.Node("10.0.0.2")
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := NewKernel(), NewKernel()
	ka.SetNetBackend(nodeA)
	kb.SetNetBackend(nodeB)
	server := ka.NewProcess("server", nil, nil)
	client := kb.NewProcess("client", nil, nil)

	const conns = 8
	const msgs = 50
	addr := SockAddr{Family: linux.AF_INET, Port: 7000}
	ls, errno := server.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno != 0 {
		t.Fatalf("socket: %v", errno)
	}
	if errno := server.Bind(ls, addr); errno != 0 {
		t.Fatalf("bind: %v", errno)
	}
	if errno := server.Listen(ls, conns); errno != 0 {
		t.Fatalf("listen: %v", errno)
	}

	var wg sync.WaitGroup
	// Server: accept every connection, echo until EOF. One goroutine
	// per connection, like the WALI thread model.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < conns; i++ {
			cfd, _, errno := server.Accept(ls, 0)
			if errno != 0 {
				t.Errorf("accept: %v", errno)
				return
			}
			wg.Add(1)
			go func(fd int32) {
				defer wg.Done()
				buf := make([]byte, 64)
				for {
					n, _, errno := server.RecvFrom(fd, buf, 0)
					if errno != 0 || n == 0 {
						server.Close(fd)
						return
					}
					server.SendTo(fd, buf[:n], 0, nil)
				}
			}(cfd)
		}
	}()

	dest := SockAddr{Family: linux.AF_INET, Port: 7000, Addr: [4]byte{10, 0, 0, 1}}
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fd, errno := client.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
			if errno != 0 {
				t.Errorf("client socket: %v", errno)
				return
			}
			if errno := client.Connect(fd, dest); errno != 0 {
				t.Errorf("cross-kernel connect: %v", errno)
				return
			}
			buf := make([]byte, 64)
			for m := 0; m < msgs; m++ {
				msg := []byte{byte(id), byte(m)}
				if _, errno := client.SendTo(fd, msg, 0, nil); errno != 0 {
					t.Errorf("send: %v", errno)
					return
				}
				n, _, errno := client.RecvFrom(fd, buf[:2], 0)
				for total := n; errno == 0 && total < 2; {
					n, _, errno = client.RecvFrom(fd, buf[total:2], 0)
					total += n
				}
				if errno != 0 {
					t.Errorf("recv: %v", errno)
					return
				}
				if buf[0] != byte(id) || buf[1] != byte(m) {
					t.Errorf("echo mismatch: got %v want [%d %d]", buf[:2], id, m)
					return
				}
			}
			client.Close(fd)
		}(c)
	}
	wg.Wait()

	// The two kernels' loopback port spaces stay disjoint: a client
	// socket in kernel B dialing 127.0.0.1:7000 finds nothing.
	fd, _ := client.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno := client.Connect(fd, SockAddr{Family: linux.AF_INET, Port: 7000, Addr: [4]byte{127, 0, 0, 1}}); errno != linux.ECONNREFUSED {
		t.Fatalf("kernel-B loopback reached kernel A: %v", errno)
	}
}

// --- blocking accept wakes on connect (regression for the rewrite) ---

func TestAcceptBlocksUntilConnect(t *testing.T) {
	_, p := newTestProc(t)
	srv, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	addr := SockAddr{Family: linux.AF_INET, Port: 8092}
	p.Bind(srv, addr)
	p.Listen(srv, 4)
	done := make(chan linux.Errno, 1)
	go func() {
		_, _, errno := p.Accept(srv, 0)
		done <- errno
	}()
	time.Sleep(2 * time.Millisecond)
	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	if errno := p.Connect(cli, addr); errno != 0 {
		t.Fatalf("connect: %v", errno)
	}
	select {
	case errno := <-done:
		if errno != 0 {
			t.Fatalf("accept: %v", errno)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept never woke")
	}
}

// A poll blocked on a listening socket must end (POLLHUP) when the
// listener is torn down out from under it, e.g. HostNet.Close.
func TestPollWakesOnListenerClose(t *testing.T) {
	_, p := newTestProc(t)
	srv, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	p.Bind(srv, SockAddr{Family: linux.AF_INET, Port: 8093})
	p.Listen(srv, 4)
	done := make(chan PollFD, 1)
	go func() {
		fds := []PollFD{{FD: srv, Events: linux.POLLIN}}
		p.Poll(fds, int64(5*time.Second))
		done <- fds[0]
	}()
	time.Sleep(2 * time.Millisecond)
	// Tear the listener down behind the socket (backend-side close, as
	// HostNet.Close does), not via the fd.
	s, _ := p.getSocket(srv)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	ln.Close()
	select {
	case fd := <-done:
		if fd.Revents&linux.POLLHUP == 0 {
			t.Fatalf("revents = %#x, want POLLHUP", fd.Revents)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("poll never woke on listener close")
	}
}

// Nonblocking connect follows the EINPROGRESS → POLLOUT → SO_ERROR
// protocol instead of stalling the caller in the backend dial.
func TestNonblockConnect(t *testing.T) {
	_, p := newTestProc(t)
	srv, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM, 0)
	addr := SockAddr{Family: linux.AF_INET, Port: 8094}
	p.Bind(srv, addr)
	p.Listen(srv, 4)

	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM|linux.SOCK_NONBLOCK, 0)
	if errno := p.Connect(cli, addr); errno != linux.EINPROGRESS {
		t.Fatalf("nonblock connect: %v, want EINPROGRESS", errno)
	}
	// Poll for writability (the async dial completing).
	fds := []PollFD{{FD: cli, Events: linux.POLLOUT}}
	if n, errno := p.Poll(fds, int64(5*time.Second)); errno != 0 || n != 1 {
		t.Fatalf("poll: n=%d %v", n, errno)
	}
	if fds[0].Revents&linux.POLLERR != 0 {
		t.Fatalf("revents = %#x, want success", fds[0].Revents)
	}
	if v, errno := p.GetSockOpt(cli, linux.SOL_SOCKET, linux.SO_ERROR); errno != 0 || v != 0 {
		t.Fatalf("SO_ERROR = %d %v, want 0", v, errno)
	}
	// A second connect reports the established state.
	if errno := p.Connect(cli, addr); errno != linux.EISCONN {
		t.Fatalf("re-connect: %v, want EISCONN", errno)
	}
	// The connection really works.
	conn, _, errno := p.Accept(srv, 0)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	if _, errno := p.SendTo(cli, []byte("nb"), 0, nil); errno != 0 {
		t.Fatalf("send: %v", errno)
	}
	buf := make([]byte, 4)
	if n, _, errno := p.RecvFrom(conn, buf, 0); errno != 0 || string(buf[:n]) != "nb" {
		t.Fatalf("recv: %q %v", buf[:n], errno)
	}
}

func TestNonblockConnectRefused(t *testing.T) {
	_, p := newTestProc(t)
	cli, _ := p.SocketSyscall(linux.AF_INET, linux.SOCK_STREAM|linux.SOCK_NONBLOCK, 0)
	errno := p.Connect(cli, SockAddr{Family: linux.AF_INET, Port: 9998})
	if errno != linux.EINPROGRESS {
		t.Fatalf("connect: %v, want EINPROGRESS", errno)
	}
	fds := []PollFD{{FD: cli, Events: linux.POLLOUT}}
	if n, errno := p.Poll(fds, int64(5*time.Second)); errno != 0 || n != 1 {
		t.Fatalf("poll: n=%d %v", n, errno)
	}
	if fds[0].Revents&linux.POLLERR == 0 {
		t.Fatalf("revents = %#x, want POLLERR", fds[0].Revents)
	}
	if v, _ := p.GetSockOpt(cli, linux.SOL_SOCKET, linux.SO_ERROR); v != int32(linux.ECONNREFUSED) {
		t.Fatalf("SO_ERROR = %d, want ECONNREFUSED", v)
	}
	// SO_ERROR is consumed by the read.
	if v, _ := p.GetSockOpt(cli, linux.SOL_SOCKET, linux.SO_ERROR); v != 0 {
		t.Fatalf("second SO_ERROR = %d, want 0", v)
	}
}

// EPOLL_CTL_ADD of a ready fd must wake an already-blocked epoll_wait
// (the wait armed on the old interest snapshot's queues only).
func TestEpollCtlWakesBlockedWait(t *testing.T) {
	_, p := newTestProc(t)
	epfd, _ := p.EpollCreate(0)
	rfd, wfd, _ := p.Pipe2(0)
	p.Write(wfd, []byte("ready before add"))

	done := make(chan []EpollEvent, 1)
	go func() {
		evs, _ := p.EpollWait(epfd, 8, int64(5*time.Second))
		done <- evs
	}()
	time.Sleep(2 * time.Millisecond) // let the waiter block on an empty interest list
	if errno := p.EpollCtl(epfd, linux.EPOLL_CTL_ADD, rfd, linux.EPOLLIN, 5); errno != 0 {
		t.Fatalf("epoll_ctl: %v", errno)
	}
	select {
	case evs := <-done:
		if len(evs) != 1 || evs[0].Data != 5 {
			t.Fatalf("events: %+v", evs)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("EPOLL_CTL_ADD never woke the blocked wait")
	}
}

// Package trace collects syscall profiles and runtime attribution from
// WALI runs: the machinery behind Fig. 2 (syscall profiles), Fig. 7
// (runtime breakdown across app / kernel / WALI) and the E1 verbose mode
// (WALI_VERBOSE-style dynamic syscall logging).
//
// The Collector is a thin compatibility layer over the obs metrics
// registry (internal/obs): the sharded-map counting it used to carry
// now lives in obs counters, so a collector's numbers appear in the
// same registry — and the same Prometheus endpoint — as the rest of
// the observability plane.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gowali/internal/core"
	"gowali/internal/obs"
)

// Collector accumulates syscall events for one run. Observe is safe for
// concurrent use and designed not to serialize the processes it
// observes: per-name counts are lock-free obs counters (cached per
// distinct syscall, so steady state is one sync.Map load and one atomic
// add) and the time/call totals are plain atomics.
type Collector struct {
	reg      *obs.Registry
	counters sync.Map // syscall name -> *obs.Counter, label pre-formatted
	totalNs  atomic.Int64
	calls    atomic.Uint64

	// Verbose, if non-nil, receives one line per syscall (E1's
	// WALI_VERBOSE).
	Verbose func(line string)
}

// NewCollector returns an empty collector over a private registry.
func NewCollector() *Collector {
	return NewCollectorOn(obs.NewRegistry())
}

// NewCollectorOn returns a collector that counts into reg, so profile
// counts surface alongside the rest of the observability plane (the
// facade passes the engine's configured registry here).
func NewCollectorOn(reg *obs.Registry) *Collector {
	return &Collector{reg: reg}
}

// Registry exposes the backing metrics registry.
func (c *Collector) Registry() *obs.Registry { return c.reg }

// Attach installs the collector on a WALI engine.
func (c *Collector) Attach(w *core.WALI) {
	w.Hook = c.Observe
}

// counter resolves (and caches) the per-syscall count instrument.
func (c *Collector) counter(name string) *obs.Counter {
	if v, ok := c.counters.Load(name); ok {
		return v.(*obs.Counter)
	}
	ctr := c.reg.Counter(`wali_syscalls_total{syscall="` + name + `"}`)
	c.counters.Store(name, ctr)
	return ctr
}

// Observe records one syscall event. It is the collector's hook function:
// pass it to WALI.Hook (Attach does) or to the embedding facade's
// WithSyscallHook option.
func (c *Collector) Observe(ev core.SyscallEvent) {
	c.counter(ev.Name).Inc()
	c.totalNs.Add(int64(ev.Duration))
	c.calls.Add(1)
	if c.Verbose != nil {
		c.Verbose(fmt.Sprintf("[pid %d] %s(...) = %d <%s>", ev.PID, ev.Name, ev.Ret, ev.Duration))
	}
}

// Counts returns a copy of the per-syscall invocation counts.
func (c *Collector) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	c.counters.Range(func(k, v any) bool {
		out[k.(string)] = uint64(v.(*obs.Counter).Value())
		return true
	})
	return out
}

// Unique returns the number of distinct syscalls invoked.
func (c *Collector) Unique() int {
	n := 0
	c.counters.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// Total returns accumulated handler time and call count.
func (c *Collector) Total() (time.Duration, uint64) {
	return time.Duration(c.totalNs.Load()), c.calls.Load()
}

// Profile is one Fig. 2 row: an app and its syscall counts.
type Profile struct {
	App    string
	Counts map[string]uint64
}

// Fig2Row is the rendered profile: log-normalized frequency per syscall in
// the shared aggregate ordering.
type Fig2Row struct {
	App    string
	Values []float64 // 0..1 per syscall, aggregate order
}

// Fig2 computes the paper's Fig. 2: syscalls sorted by aggregate
// frequency; each row log-normalized to its own maximum.
func Fig2(profiles []Profile) (order []string, rows []Fig2Row) {
	agg := make(map[string]uint64)
	for _, p := range profiles {
		for s, n := range p.Counts {
			agg[s] += n
		}
	}
	order = make([]string, 0, len(agg))
	for s := range agg {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		if agg[order[i]] != agg[order[j]] {
			return agg[order[i]] > agg[order[j]]
		}
		return order[i] < order[j]
	})

	aggRow := Fig2Row{App: "Aggregate", Values: logNorm(order, agg)}
	rows = append(rows, aggRow)
	for _, p := range profiles {
		rows = append(rows, Fig2Row{App: p.App, Values: logNorm(order, p.Counts)})
	}
	return order, rows
}

func logNorm(order []string, counts map[string]uint64) []float64 {
	vals := make([]float64, len(order))
	maxLog := 0.0
	for i, s := range order {
		if counts[s] > 0 {
			vals[i] = math.Log1p(float64(counts[s]))
			if vals[i] > maxLog {
				maxLog = vals[i]
			}
		}
	}
	if maxLog > 0 {
		for i := range vals {
			vals[i] /= maxLog
		}
	}
	return vals
}

// Breakdown is one Fig. 7 bar: the runtime split across the system stack.
type Breakdown struct {
	App       string
	AppPct    float64 // wasm-app
	KernelPct float64
	WaliPct   float64
}

// AttributeRuntime computes the Fig. 7 split. wall is total run time,
// handlerTime the accumulated syscall handler time (kernel + WALI
// translation), calls the syscall count, and perCallOverhead the
// calibrated WALI-intrinsic dispatch+translation cost per call (measured
// by a no-op syscall microbenchmark, Table 2's method).
func AttributeRuntime(app string, wall, handlerTime time.Duration, calls uint64, perCallOverhead time.Duration) Breakdown {
	if wall <= 0 {
		return Breakdown{App: app}
	}
	wali := time.Duration(calls) * perCallOverhead
	if wali > handlerTime {
		wali = handlerTime
	}
	kern := handlerTime - wali
	appT := wall - handlerTime
	if appT < 0 {
		appT = 0
	}
	tot := float64(appT + kern + wali)
	return Breakdown{
		App:       app,
		AppPct:    100 * float64(appT) / tot,
		KernelPct: 100 * float64(kern) / tot,
		WaliPct:   100 * float64(wali) / tot,
	}
}

package trace

import (
	"testing"
	"time"
)

func TestFig2OrderingAndNormalization(t *testing.T) {
	profiles := []Profile{
		{App: "a", Counts: map[string]uint64{"read": 100, "write": 10, "open": 1}},
		{App: "b", Counts: map[string]uint64{"read": 50, "mmap": 5}},
	}
	order, rows := Fig2(profiles)
	if order[0] != "read" {
		t.Fatalf("most frequent first: %v", order)
	}
	if len(rows) != 3 || rows[0].App != "Aggregate" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, r := range rows {
		if len(r.Values) != len(order) {
			t.Fatalf("%s: %d values for %d syscalls", r.App, len(r.Values), len(order))
		}
		max := 0.0
		for _, v := range r.Values {
			if v < 0 || v > 1 {
				t.Fatalf("%s: value %f out of [0,1]", r.App, v)
			}
			if v > max {
				max = v
			}
		}
		if max != 1.0 {
			t.Errorf("%s: row max %f, want 1.0 (log-normalized per row)", r.App, max)
		}
	}
	// App b never calls write: its write column must be zero.
	widx := -1
	for i, s := range order {
		if s == "write" {
			widx = i
		}
	}
	if rows[2].Values[widx] != 0 {
		t.Error("unused syscall should be zero in the row")
	}
}

func TestAttributeRuntime(t *testing.T) {
	br := AttributeRuntime("x", 100*time.Millisecond, 20*time.Millisecond, 1000, 5*time.Microsecond)
	total := br.AppPct + br.KernelPct + br.WaliPct
	if total < 99.9 || total > 100.1 {
		t.Fatalf("percentages sum to %f", total)
	}
	if br.WaliPct <= 0 || br.WaliPct >= br.KernelPct {
		t.Fatalf("wali share %f implausible vs kernel %f", br.WaliPct, br.KernelPct)
	}
	if br.AppPct < 79 || br.AppPct > 81 {
		t.Fatalf("app share %f, want ~80", br.AppPct)
	}
	// Degenerate inputs must not divide by zero.
	z := AttributeRuntime("z", 0, 0, 0, 0)
	if z.AppPct != 0 && z.KernelPct != 0 {
		t.Fatal("zero wall must yield zero breakdown")
	}
	// Handler time exceeding wall (multi-threaded runs) clamps app to 0.
	c := AttributeRuntime("c", 10*time.Millisecond, 20*time.Millisecond, 10, time.Microsecond)
	if c.AppPct != 0 {
		t.Fatalf("app share %f, want 0 when handlers exceed wall", c.AppPct)
	}
}

// Snapshot: checkpoint a warmed guest into an image, restore it on a
// fresh runtime — in microseconds, skipping the guest's warm-up — and
// fork a small fleet from the same image, all sharing memory
// copy-on-write. The guest is self-verifying: after its service rounds
// it re-checksums the working set it warmed before the checkpoint and
// prints "snapshot state intact" only if the state survived.
//
//	go run ./examples/snapshot                   # in-process demo
//	go run ./examples/snapshot -emit guest.wasm  # emit the guest binary
//
// The emitted binary pairs with wali-run's checkpoint flags:
//
//	wali-run -snapshot g.snap -snapshot-delay 300ms guest.wasm
//	wali-run -restore g.snap
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gowali"
	"gowali/wasm"
)

// Guest memory layout.
const (
	sumAddr   = 64      // i64: checksum of the warmed working set
	tsBuf     = 96      // timespec {0, 100ms} for the service rounds
	msgOK     = 256     // "snapshot state intact\n"
	msgBad    = 512     // "working set corrupt\n"
	warmBase  = 1 << 16 // warmed working set: pages 1-8
	warmBytes = 8 << 16
	warmStep  = 512
	rounds    = 10 // 100ms service rounds before the self-check
)

var okLine = []byte("snapshot state intact\n")
var badLine = []byte("working set corrupt\n")

// checksumLoop emits: for i over the warm region { body(i); i += step }.
func checksumLoop(f *wasm.FuncBuilder, i uint32, body func()) {
	f.I32Const(warmBase).LocalSet(i)
	f.Block()
	f.Loop()
	body()
	f.LocalGet(i).I32Const(warmStep).Op(wasm.OpI32Add).LocalSet(i)
	f.LocalGet(i).I32Const(warmBase + warmBytes).Op(wasm.OpI32LtU).BrIf(0)
	f.End()
	f.End()
}

// buildGuest assembles the self-verifying guest: warm a 512 KiB working
// set and record its checksum, idle through the service rounds (where
// the checkpoint lands), then re-checksum and report.
func buildGuest() (*wasm.Module, error) {
	b := wasm.NewBuilder("snapshot-demo")
	sysSleep := gowali.ImportWALISyscall(b, "nanosleep")
	sysWrite := gowali.ImportWALISyscall(b, "write")
	sysExit := gowali.ImportWALISyscall(b, "exit_group")
	b.Memory(16, 32, false)
	// 100ms timespec {sec=0, nsec=1e8}.
	b.Data(tsBuf, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0x00, 0xE1, 0xF5, 0x05, 0, 0, 0, 0})
	b.Data(msgOK, okLine)
	b.Data(msgBad, badLine)

	f := b.NewFunc(gowali.StartExport, nil, nil)
	i := f.Local(wasm.I32)
	sum := f.Local(wasm.I64)
	r := f.Local(wasm.I32)

	// Warm: mem[i] = i*2654435761 (a spread pattern), sum it up.
	checksumLoop(f, i, func() {
		f.LocalGet(i)
		f.LocalGet(i).I32Const(-1640531527).Op(wasm.OpI32Mul) // 2654435761 as i32
		f.Store(wasm.OpI32Store, 0)
		f.LocalGet(sum)
		f.LocalGet(i).Load(wasm.OpI32Load, 0).Op(wasm.OpI64ExtendI32U)
		f.Op(wasm.OpI64Add).LocalSet(sum)
	})
	f.I32Const(sumAddr).LocalGet(sum).Store(wasm.OpI64Store, 0)

	// Service rounds: the checkpoint interrupts one of these sleeps.
	f.Block()
	f.Loop()
	f.I64Const(tsBuf).I64Const(0).Call(sysSleep).Drop()
	f.LocalGet(r).I32Const(1).Op(wasm.OpI32Add).LocalTee(r)
	f.I32Const(rounds).Op(wasm.OpI32LtU).BrIf(0)
	f.End()
	f.End()

	// Re-checksum the working set and compare with the recorded sum.
	f.I64Const(0).LocalSet(sum)
	checksumLoop(f, i, func() {
		f.LocalGet(sum)
		f.LocalGet(i).Load(wasm.OpI32Load, 0).Op(wasm.OpI64ExtendI32U)
		f.Op(wasm.OpI64Add).LocalSet(sum)
	})
	f.LocalGet(sum).I32Const(sumAddr).Load(wasm.OpI64Load, 0).Op(wasm.OpI64Eq)
	f.If()
	f.I64Const(1).I64Const(msgOK).I64Const(int64(len(okLine))).Call(sysWrite).Drop()
	f.I64Const(0).Call(sysExit).Drop()
	f.End()
	f.I64Const(1).I64Const(msgBad).I64Const(int64(len(badLine))).Call(sysWrite).Drop()
	f.I64Const(1).Call(sysExit).Drop()
	f.Finish()
	return b.Build()
}

func main() {
	emit := flag.String("emit", "", "also write the guest module to this .wasm file")
	flag.Parse()

	built, err := buildGuest()
	if err != nil {
		log.Fatal(err)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, wasm.Encode(built), 0o755); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emitted guest binary: %s\n", *emit)
		return
	}
	m, err := gowali.CompileBuilt(built)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Spawn and let the guest warm its working set.
	rt, err := gowali.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	p, err := rt.Spawn(ctx, m, []string{"snapshot-demo"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond)

	// 2. Checkpoint it mid-run; the original keeps going.
	start := time.Now()
	img, err := gowali.Snapshot(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot taken in %s\n", time.Since(start).Round(time.Microsecond))

	// 3. Restore on a fresh runtime: the child picks up mid-service,
	//    warm-up already paid.
	rt2, err := gowali.New()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	p2, err := rt2.Restore(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored in %s\n", time.Since(start).Round(time.Microsecond))

	// 4. Fork two more children from the same image on that runtime.
	kids, err := img.Fork(2)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Everyone must finish with the working set intact.
	if status, err := p.Wait(ctx); err != nil || status != 0 {
		log.Fatalf("original: status=%d err=%v", status, err)
	}
	if status, err := p2.Wait(ctx); err != nil || status != 0 {
		log.Fatalf("restored: status=%d err=%v", status, err)
	}
	for i, k := range kids {
		if status, err := k.Wait(ctx); err != nil || status != 0 {
			log.Fatalf("fork %d: status=%d err=%v", i, status, err)
		}
	}
	rt.WaitAll()
	rt2.WaitAll()

	if !bytes.Contains(rt.ConsoleOutput(), okLine) || !bytes.Contains(rt2.ConsoleOutput(), okLine) {
		log.Fatalf("consoles: original %q, restored %q", rt.ConsoleOutput(), rt2.ConsoleOutput())
	}
	fmt.Printf("original console: %s", rt.ConsoleOutput())
	fmt.Printf("restored+forked console: %s", rt2.ConsoleOutput())
	fmt.Println("round trip ok")
}

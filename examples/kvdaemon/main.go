// KV daemon example: the memcached-analogue — an epoll server with an
// instance-per-thread client, loopback TCP inside the simulated kernel,
// and futex-based shutdown, all through the gowali embedding facade.
// Prints the syscall mix afterwards (the Fig. 2 memcached profile).
package main

import (
	"fmt"
	"log"
	"sort"

	"gowali"
)

func main() {
	const ops = 500
	col := gowali.NewCollector()
	rt, err := gowali.New(gowali.WithSyscallHook(col.Observe))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("serving %d set+echo operations over loopback TCP...\n", ops)
	status, err := rt.RunApp("memcached", ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("console: %sexit status: %d\n\n", rt.ConsoleOutput(), status)

	counts := col.Counts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
	fmt.Println("syscall profile (memcached row of Fig. 2):")
	for _, n := range names {
		fmt.Printf("  %-16s %6d\n", n, counts[n])
	}
	d, calls := col.Total()
	fmt.Printf("\n%d syscalls, %s total in WALI handlers\n", calls, d)
}

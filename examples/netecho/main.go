// Netecho: serve a guest TCP echo server to real host clients through
// gowali's HostNet backend — the first end-to-end path from a host
// socket into a guest. The guest binds 0.0.0.0:7070 with plain Linux
// syscalls (socket, bind, listen, poll, accept, recvfrom, sendto);
// WithNet maps that guest port onto a real host listener, and a host
// TCP client round-trips messages through it. The same guest module
// can be emitted as a .wasm binary (-emit) and served with
// `wali-run -net host=7070:127.0.0.1:18080 guest.wasm`.
//
//	go run ./examples/netecho                     # self-contained round trip
//	go run ./examples/netecho -listen 127.0.0.1:18080
//	go run ./examples/netecho -emit guest.wasm    # also write the guest binary
//	go run ./examples/netecho -dial 127.0.0.1:18080 -msg "ping"
//	go run ./examples/netecho -emit-client client.wasm -target 10.9.1.1:7070
//
// -dial skips the runtime entirely and acts as a plain host client
// (the CI e2e uses it to probe a wali-run-served guest). -emit-client
// writes a guest *client* that dials -target — a fabric address on
// another wali-run process — round-trips a message and exits 0 on a
// byte-exact echo; the CI two-process e2e runs it with
// `wali-run -net subnet=... -net join=HOST:PORT client.wasm` against a
// bridged server.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"time"

	"gowali"
	"gowali/wasm"
)

// guestPort is the port the guest server binds inside its kernel.
const guestPort = 7070

// buildGuest compiles the echo server: bind/listen/accept one
// connection, then echo poll-driven until the client closes.
func buildGuest() (*wasm.Module, error) {
	b := wasm.NewBuilder("netecho-guest")
	sys := map[string]uint32{}
	for _, s := range []string{
		"socket", "bind", "listen", "accept", "poll",
		"recvfrom", "sendto", "close", "exit_group",
	} {
		sys[s] = gowali.ImportWALISyscall(b, s)
	}
	b.Memory(2, 16, false)
	const (
		addrBuf = 1024 // sockaddr_in {AF_INET, htons(7070), 0.0.0.0}
		pollBuf = 2048 // struct pollfd
		ioBuf   = 4096
	)
	b.Data(addrBuf, []byte{2, 0, byte(guestPort >> 8), byte(guestPort & 0xff), 0, 0, 0, 0})

	const pollin = 0x001
	f := b.NewFunc(gowali.StartExport, nil, nil)
	ls := f.Local(wasm.I64)
	cs := f.Local(wasm.I64)
	n := f.Local(wasm.I64)
	pollOn := func(fd uint32) {
		f.I32Const(pollBuf).LocalGet(fd).Op(wasm.OpI32WrapI64).Store(wasm.OpI32Store, 0)
		f.I32Const(pollBuf+4).I32Const(pollin).Store(wasm.OpI32Store16, 0)
		f.I32Const(pollBuf+6).I32Const(0).Store(wasm.OpI32Store16, 0)
	}

	// ls = socket(AF_INET=2, SOCK_STREAM=1, 0); bind; listen
	f.I64Const(2).I64Const(1).I64Const(0).Call(sys["socket"]).LocalSet(ls)
	f.LocalGet(ls).I64Const(addrBuf).I64Const(8).Call(sys["bind"]).Drop()
	f.LocalGet(ls).I64Const(16).Call(sys["listen"]).Drop()
	// Block in poll until a host client connects, then accept it.
	pollOn(ls)
	f.I64Const(pollBuf).I64Const(1).I64Const(-1).Call(sys["poll"]).Drop()
	f.LocalGet(ls).I64Const(0).I64Const(0).Call(sys["accept"]).LocalSet(cs)
	// Echo until EOF, blocking in poll before every read.
	pollOn(cs)
	f.Block()
	f.Loop()
	f.I64Const(pollBuf).I64Const(1).I64Const(-1).Call(sys["poll"]).Drop()
	f.LocalGet(cs).I64Const(ioBuf).I64Const(32768).I64Const(0).I64Const(0).I64Const(0)
	f.Call(sys["recvfrom"]).LocalSet(n)
	f.LocalGet(n).I64Const(0).Op(wasm.OpI64LeS).BrIf(1)
	f.LocalGet(cs).I64Const(ioBuf).LocalGet(n).I64Const(0).I64Const(0).I64Const(0)
	f.Call(sys["sendto"]).Drop()
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(cs).Call(sys["close"]).Drop()
	f.LocalGet(ls).Call(sys["close"]).Drop()
	f.I64Const(0).Call(sys["exit_group"]).Drop()
	f.Finish()
	return b.Build()
}

// buildClientGuest compiles a guest echo *client*: connect to target
// (retrying while the remote listener and fabric routes come up), send
// msg, read the echo back and exit 0 iff every byte returned.
func buildClientGuest(target string, msg string) (*wasm.Module, error) {
	host, portStr, err := net.SplitHostPort(target)
	if err != nil {
		return nil, err
	}
	ip := net.ParseIP(host).To4()
	if ip == nil {
		return nil, fmt.Errorf("target %q: need an IPv4 address", target)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return nil, err
	}

	b := wasm.NewBuilder("netecho-client")
	sys := map[string]uint32{}
	for _, s := range []string{
		"socket", "connect", "poll", "recvfrom", "sendto",
		"close", "nanosleep", "exit_group",
	} {
		sys[s] = gowali.ImportWALISyscall(b, s)
	}
	b.Memory(2, 16, false)
	const (
		addrBuf = 1024 // sockaddr_in of the target
		pollBuf = 2048 // struct pollfd
		tsBuf   = 2064 // 1ms timespec for the connect retry loop
		ioBuf   = 4096
	)
	b.Data(addrBuf, []byte{2, 0, byte(port >> 8), byte(port & 0xff), ip[0], ip[1], ip[2], ip[3]})
	b.Data(tsBuf, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0x40, 0x42, 0x0F, 0, 0, 0, 0, 0})
	b.Data(ioBuf, []byte(msg))

	const pollin = 0x001
	f := b.NewFunc(gowali.StartExport, nil, nil)
	cs := f.Local(wasm.I64)
	n := f.Local(wasm.I64)
	got := f.Local(wasm.I32)

	f.I64Const(2).I64Const(1).I64Const(0).Call(sys["socket"]).LocalSet(cs)
	// Retry connect: the server process may still be booting, and across
	// a fresh trunk the route announcement may still be in flight.
	f.Block()
	f.Loop()
	f.LocalGet(cs).I64Const(addrBuf).I64Const(8).Call(sys["connect"])
	f.Op(wasm.OpI64Eqz).BrIf(1)
	f.I64Const(tsBuf).I64Const(0).Call(sys["nanosleep"]).Drop()
	f.Br(0)
	f.End()
	f.End()

	f.LocalGet(cs).I64Const(ioBuf).I64Const(int64(len(msg))).I64Const(0).I64Const(0).I64Const(0)
	f.Call(sys["sendto"]).Drop()

	// Read the echo back, blocking in poll before every read.
	f.I32Const(pollBuf).LocalGet(cs).Op(wasm.OpI32WrapI64).Store(wasm.OpI32Store, 0)
	f.I32Const(pollBuf+4).I32Const(pollin).Store(wasm.OpI32Store16, 0)
	f.I32Const(pollBuf+6).I32Const(0).Store(wasm.OpI32Store16, 0)
	f.Block()
	f.Loop()
	f.LocalGet(got).I32Const(int32(len(msg))).Op(wasm.OpI32GeU).BrIf(1)
	f.I64Const(pollBuf).I64Const(1).I64Const(-1).Call(sys["poll"]).Drop()
	f.LocalGet(cs).I64Const(ioBuf).I64Const(int64(len(msg))).I64Const(0).I64Const(0).I64Const(0)
	f.Call(sys["recvfrom"]).LocalSet(n)
	f.LocalGet(n).I64Const(0).Op(wasm.OpI64LeS).BrIf(1)
	f.LocalGet(got).LocalGet(n).Op(wasm.OpI32WrapI64).Op(wasm.OpI32Add).LocalSet(got)
	f.Br(0)
	f.End()
	f.End()

	f.LocalGet(cs).Call(sys["close"]).Drop()
	// exit(got != len(msg)): a short echo is a loud failure.
	f.LocalGet(got).I32Const(int32(len(msg))).Op(wasm.OpI32Ne).Op(wasm.OpI64ExtendI32U)
	f.Call(sys["exit_group"]).Drop()
	f.Finish()
	return b.Build()
}

// probe round-trips msg through addr and returns the echo.
func probe(addr, msg string) (string, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	defer c.Close()
	if _, err := c.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	got := 0
	for got < len(msg) {
		n, err := c.Read(buf[got:])
		if err != nil {
			return "", err
		}
		got += n
	}
	return string(buf[:got]), nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host address backing the guest listener")
	emit := flag.String("emit", "", "also write the guest module to this .wasm file")
	emitClient := flag.String("emit-client", "", "write a guest echo client dialing -target to this .wasm file, then exit")
	target := flag.String("target", "", "fabric IP:PORT the -emit-client guest dials (a bridged server's address)")
	dial := flag.String("dial", "", "client-only mode: probe an already-running echo server at this host address")
	msg := flag.String("msg", "hello from the host", "message to round-trip")
	flag.Parse()

	// Emit-client mode: write the dialing guest and exit.
	if *emitClient != "" {
		if *target == "" {
			log.Fatal("-emit-client requires -target IP:PORT")
		}
		built, err := buildClientGuest(*target, *msg)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*emitClient, wasm.Encode(built), 0o755); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emitted client binary: %s (dials %s)\n", *emitClient, *target)
		return
	}

	// Client-only mode: probe and report.
	if *dial != "" {
		echo, err := probe(*dial, *msg)
		if err != nil {
			log.Fatal(err)
		}
		if echo != *msg {
			log.Fatalf("echo mismatch: sent %q, got %q", *msg, echo)
		}
		fmt.Printf("echo ok: %q\n", echo)
		return
	}

	// 1. The guest echo server (optionally emitted for wali-run -net).
	built, err := buildGuest()
	if err != nil {
		log.Fatal(err)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, wasm.Encode(built), 0o755); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emitted guest binary: %s\n", *emit)
	}
	m, err := gowali.CompileBuilt(built)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A runtime whose network maps guest port 7070 onto a host
	//    listener.
	hn := gowali.NewHostNet(gowali.HostNetConfig{
		Binds: map[uint16]string{guestPort: *listen},
	})
	rt, err := gowali.New(gowali.WithNet(hn))
	if err != nil {
		log.Fatal(err)
	}
	p, err := rt.Spawn(context.Background(), m, []string{"netecho"}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The guest's listen(2) became a real host listener; dial it.
	addr := hn.BoundAddr(guestPort)
	for i := 0; addr == "" && i < 5000; i++ {
		time.Sleep(time.Millisecond)
		addr = hn.BoundAddr(guestPort)
	}
	if addr == "" {
		log.Fatal("guest listener never appeared on the host")
	}
	fmt.Printf("guest echo server listening on host %s\n", addr)
	echo, err := probe(addr, *msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host sent %q, guest echoed %q\n", *msg, echo)
	if echo != *msg {
		log.Fatal("round trip mismatch")
	}
	if _, err := p.Wait(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip ok")
}

// Shell example: the bash-analogue exercising the process model — fork,
// pipes, execve, wait4 and virtual signal handlers — with a live syscall
// trace, demonstrating the features Table 1 shows WASI cannot express.
// Everything goes through the gowali embedding facade.
package main

import (
	"fmt"
	"log"
	"os"

	"gowali"
)

func main() {
	col := gowali.NewCollector()
	col.Verbose = func(line string) { fmt.Fprintln(os.Stderr, line) }
	rt, err := gowali.New(gowali.WithSyscallHook(col.Observe))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running 5 shell jobs (each: pipe → fork → compute → exec|exit → wait4)...")
	status, err := rt.RunApp("bash", 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconsole: %s", rt.ConsoleOutput())
	fmt.Printf("exit status: %d\n", status)
	counts := col.Counts()
	fmt.Printf("process-model syscalls: fork=%d wait4=%d pipe2=%d execve=%d rt_sigaction=%d\n",
		counts["fork"], counts["wait4"], counts["pipe2"], counts["execve"], counts["rt_sigaction"])
	if n := rt.Kernel().ProcessCount(); n != 0 {
		log.Fatalf("process leak: %d", n)
	}
	fmt.Println("all children reaped; kernel process table empty")
}

// Shell example: the bash-analogue exercising the process model — fork,
// pipes, execve, wait4 and virtual signal handlers — with a live syscall
// trace, demonstrating the features Table 1 shows WASI cannot express.
package main

import (
	"fmt"
	"log"
	"os"

	"gowali/internal/apps"
	"gowali/internal/core"
	"gowali/internal/trace"
)

func main() {
	w := core.New()
	col := trace.NewCollector()
	col.Verbose = func(line string) { fmt.Fprintln(os.Stderr, line) }
	col.Attach(w)

	app, err := apps.ByName("bash")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running 5 shell jobs (each: pipe → fork → compute → exec|exit → wait4)...")
	_, status, err := apps.RunOn(w, app, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconsole: %s", w.Console().Output())
	fmt.Printf("exit status: %d\n", status)
	counts := col.Counts()
	fmt.Printf("process-model syscalls: fork=%d wait4=%d pipe2=%d execve=%d rt_sigaction=%d\n",
		counts["fork"], counts["wait4"], counts["pipe2"], counts["execve"], counts["rt_sigaction"])
	if w.Kernel.ProcessCount() != 0 {
		log.Fatalf("process leak: %d", w.Kernel.ProcessCount())
	}
	fmt.Println("all children reaped; kernel process table empty")
}

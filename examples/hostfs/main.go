// Hostfs: mount a real host directory into the guest with
// gowali.WithMount and watch a guest program process host files with
// plain Linux syscalls — open, pread64, write — then verify the result
// on the host side. The same guest module can be emitted as a .wasm
// binary (-emit) and run with `wali-run -dir hostdir=/data guest.wasm`.
//
//	go run ./examples/hostfs                  # self-contained demo in a temp dir
//	go run ./examples/hostfs -root /some/dir  # use an existing host dir
//	go run ./examples/hostfs -emit guest.wasm # also write the guest binary
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gowali"
	"gowali/wasm"
)

// buildGuest compiles the guest: it reads /data/input.txt, echoes the
// contents to the console, writes them to /data/out.txt, and exits 0.
func buildGuest() (*wasm.Module, error) {
	b := wasm.NewBuilder("hostfs-demo")
	sysOpen := gowali.ImportWALISyscall(b, "open")
	sysPread := gowali.ImportWALISyscall(b, "pread64")
	sysWrite := gowali.ImportWALISyscall(b, "write")
	sysClose := gowali.ImportWALISyscall(b, "close")
	sysExit := gowali.ImportWALISyscall(b, "exit_group")
	b.Memory(2, 16, false)
	const (
		srcPath = 1024
		dstPath = 1280
		ioBuf   = 4096
	)
	b.Data(srcPath, []byte("/data/input.txt\x00"))
	b.Data(dstPath, []byte("/data/out.txt\x00"))

	f := b.NewFunc(gowali.StartExport, nil, nil)
	fd := f.Local(wasm.I64)
	n := f.Local(wasm.I64)
	// fd = open("/data/input.txt", O_RDONLY); n = pread64(fd, buf, 1024, 0)
	f.I64Const(srcPath).I64Const(0).I64Const(0).Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(ioBuf).I64Const(1024).I64Const(0).Call(sysPread).LocalSet(n)
	f.LocalGet(fd).Call(sysClose).Drop()
	// write(1, buf, n): show the host file on the guest console.
	f.I64Const(1).I64Const(ioBuf).LocalGet(n).Call(sysWrite).Drop()
	// fd = open("/data/out.txt", O_CREAT|O_WRONLY|O_TRUNC, 0644); write; close
	f.I64Const(dstPath).I64Const(0o101 | 0o1000).I64Const(0o644).Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(ioBuf).LocalGet(n).Call(sysWrite).Drop()
	f.LocalGet(fd).Call(sysClose).Drop()
	f.I64Const(0).Call(sysExit).Drop()
	f.Finish()
	return b.Build()
}

func main() {
	root := flag.String("root", "", "host directory to mount at /data (default: a fresh temp dir)")
	emit := flag.String("emit", "", "also write the guest module to this .wasm file")
	flag.Parse()

	// 1. A host directory with an input file.
	dir := *root
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gowali-hostfs-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	inputPath := filepath.Join(dir, "input.txt")
	if _, err := os.Stat(inputPath); err != nil {
		if err := os.WriteFile(inputPath, []byte("host data, guest syscalls\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// 2. The guest program (optionally emitted as a standalone binary
	//    for wali-run -dir).
	built, err := buildGuest()
	if err != nil {
		log.Fatal(err)
	}
	if *emit != "" {
		if err := os.WriteFile(*emit, wasm.Encode(built), 0o755); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("emitted guest binary: %s\n", *emit)
	}
	m, err := gowali.CompileBuilt(built)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Mount the host directory at /data and run.
	host, err := gowali.NewHostFS(dir, false)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := gowali.New(gowali.WithMount("/data", host))
	if err != nil {
		log.Fatal(err)
	}
	status, err := rt.Run(context.Background(), m, []string{"hostfs-demo"}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The guest's write is a real host file now.
	out, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		log.Fatalf("guest output missing on host: %v", err)
	}
	fmt.Printf("exit status: %d\n", status)
	fmt.Printf("guest console: %s", rt.ConsoleOutput())
	fmt.Printf("host %s: %s", filepath.Join(dir, "out.txt"), out)
	if string(out) != "host data, guest syscalls\n" {
		log.Fatal("round trip mismatch")
	}
	fmt.Println("round trip ok")
}

// Quickstart: build a Wasm module against the WALI import surface, run
// it through the gowali embedding facade, and read its console output —
// the minimal end-to-end path through the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"gowali"
	"gowali/wasm"
)

func main() {
	// 1. "Compile" a program against WALI. Real deployments would use an
	//    LLVM/musl toolchain; here the builder DSL plays that role.
	b := wasm.NewBuilder("hello")
	sysWrite := gowali.ImportWALISyscall(b, "write")
	sysUname := gowali.ImportWALISyscall(b, "uname")
	sysExit := gowali.ImportWALISyscall(b, "exit_group")
	b.Memory(2, 16, false)
	b.Data(1024, []byte("hello from wasm over WALI\n"))

	f := b.NewFunc(gowali.StartExport, nil, nil)
	// write(1, msg, len)
	f.I64Const(1).I64Const(1024).I64Const(26).Call(sysWrite).Drop()
	// uname(&buf) — then print the machine field (offset 4*65).
	f.I64Const(4096).Call(sysUname).Drop()
	f.I64Const(1).I64Const(4096 + 4*65).I64Const(6).Call(sysWrite).Drop()
	f.I64Const(1).I64Const(2048).I64Const(1).Call(sysWrite).Drop() // newline below
	f.I64Const(0).Call(sysExit).Drop()
	f.Finish()
	b.Data(2048, []byte("\n"))

	built, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	m, err := gowali.CompileBuilt(built)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Boot a runtime (kernel + WALI host layer), run the module.
	rt, err := gowali.New()
	if err != nil {
		log.Fatal(err)
	}
	status, err := rt.Run(context.Background(), m, []string{"hello"}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the result.
	fmt.Printf("exit status: %d\n", status)
	fmt.Printf("console:\n%s", rt.ConsoleOutput())
}

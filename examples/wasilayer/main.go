// WASI layering example (Fig. 1 / Fig. 6): a pure-WASI module — it
// imports only wasi_snapshot_preview1 — runs on a runtime whose host
// layer is WASIHost: WASI implemented over WALI. A syscall hook shows
// every WASI call bottoming out in WALI kernel-interface calls.
package main

import (
	"context"
	"fmt"
	"log"

	"gowali"
	"gowali/wasm"
)

func main() {
	// A WASI application: writes a greeting with fd_write, creates a file
	// through path_open relative to the preopened root, then exits.
	b := wasm.NewBuilder("wasi-app")
	i32 := wasm.I32
	fdWrite := b.ImportFunc(gowali.WASINamespace, "fd_write",
		[]wasm.ValType{i32, i32, i32, i32}, []wasm.ValType{i32})
	pathOpen := b.ImportFunc(gowali.WASINamespace, "path_open",
		[]wasm.ValType{i32, i32, i32, i32, i32, wasm.I64, wasm.I64, i32, i32}, []wasm.ValType{i32})
	fdClose := b.ImportFunc(gowali.WASINamespace, "fd_close",
		[]wasm.ValType{i32}, []wasm.ValType{i32})
	procExit := b.ImportFunc(gowali.WASINamespace, "proc_exit",
		[]wasm.ValType{i32}, nil)
	b.Memory(2, 16, false)
	b.Data(1024, []byte("hello from a WASI app, via WALI\n"))
	b.Data(1100, []byte("tmp/wasi-made-this.txt"))
	// iovec at 500: {1024, 32}
	b.Data(500, []byte{0, 4, 0, 0, 32, 0, 0, 0})

	f := b.NewFunc(gowali.StartExport, nil, nil)
	f.I32Const(1).I32Const(500).I32Const(1).I32Const(508).Call(fdWrite).Drop()
	// path_open(preopen=3, follow, path, len, O_CREAT, rights rw, rights, 0, fd_out@512)
	f.I32Const(3).I32Const(1).I32Const(1100).I32Const(22)
	f.I32Const(gowali.WASIOflagCreat)
	f.I64Const(int64(gowali.WASIRightFdRead | gowali.WASIRightFdWrite)).I64Const(0)
	f.I32Const(0).I32Const(512)
	f.Call(pathOpen).Drop()
	f.I32Const(512).Load(wasm.OpI32Load, 0).Call(fdClose).Drop()
	f.I32Const(0).Call(procExit)
	f.Finish()
	built, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	m, err := gowali.CompileBuilt(built)
	if err != nil {
		log.Fatal(err)
	}

	// Runtime: the WASI host layer over WALI, with a hook recording the
	// underlying WALI calls.
	var waliCalls []string
	rt, err := gowali.New(
		gowali.WithHost(gowali.WASIHost()),
		gowali.WithSyscallHook(func(ev gowali.SyscallEvent) {
			waliCalls = append(waliCalls, ev.Name)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	status, err := rt.Run(context.Background(), m, []string{"wasi-app"}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("console: %s", rt.ConsoleOutput())
	fmt.Printf("exit status: %d\n", status)
	fmt.Printf("\nWASI calls decomposed into WALI kernel-interface calls:\n  %v\n", waliCalls)
	if r, errno := rt.Kernel().FS.Walk("/", "/tmp/wasi-made-this.txt", true); errno == 0 && r.Node != nil {
		fmt.Println("file created through the layered stack: /tmp/wasi-made-this.txt")
	}
}

package gowali

import (
	"gowali/internal/core"
	"gowali/internal/interp"
	"gowali/internal/kernel"
	"gowali/internal/trace"
	"gowali/internal/wasi"
	"gowali/internal/wasm"
	"gowali/internal/wazi"
)

// The embedding facade re-exports the supported types of the engine so
// that embedders — including this repository's cmd/ tools and examples —
// never import gowali/internal/... directly. Everything below is public
// API; everything else under internal/ may change freely.

// Trap is a WebAssembly trap, returned as the error from Wait when guest
// execution faults. Stack holds the guest backtrace, innermost frame
// first.
type Trap = interp.Trap

// TrapCode classifies a Trap.
type TrapCode = interp.TrapCode

// Exit reports guest-initiated termination (exit_group); Wait converts
// it to a plain status, so embedders rarely see it directly.
type Exit = interp.Exit

// SafepointScheme selects where the engine polls for asynchronous events
// (Table 3 compares the cost of the choices).
type SafepointScheme = interp.SafepointScheme

// Safepoint schemes, from never to every instruction.
const (
	SafepointNone      = interp.SafepointNone
	SafepointLoop      = interp.SafepointLoop
	SafepointFunc      = interp.SafepointFunc
	SafepointEveryInst = interp.SafepointEveryInst
)

// SyscallEvent is one observed syscall; see WithSyscallHook.
type SyscallEvent = core.SyscallEvent

// Kernel is the simulated Linux kernel a WALI-backed runtime executes
// over: VFS, process table, devices, futexes, signals. Obtain a
// runtime's kernel with Runtime.Kernel, or boot one with NewKernel to
// share across runtimes via WithKernel.
type Kernel = kernel.Kernel

// NewKernel boots a fresh simulated kernel.
func NewKernel() *Kernel { return kernel.NewKernel() }

// Preopen grants a WASI directory capability: the guest path maps onto
// the given path in the runtime's kernel filesystem.
type Preopen = wasi.Preopen

// Collector accumulates syscall profiles from a run; install its Observe
// method with WithSyscallHook.
type Collector = trace.Collector

// NewCollector returns an empty syscall collector.
func NewCollector() *Collector { return trace.NewCollector() }

// StartExport is the entry-point export every guest module provides.
const StartExport = core.StartExport

// Import namespaces of the three shipped host layers.
const (
	WALINamespace = core.Namespace
	WASINamespace = wasi.Namespace
	WAZINamespace = wazi.Namespace
)

// WASI open flags and rights used when hand-building WASI modules with
// the gowali/wasm builder (subset; toolchain-built modules carry their
// own).
const (
	WASIOflagCreat   = wasi.OflagCreat
	WASIRightFdRead  = wasi.RightFdRead
	WASIRightFdWrite = wasi.RightFdWrite
)

// ImportWALISyscall declares the WALI import for a syscall on a module
// builder, returning the function index to Call.
func ImportWALISyscall(b *wasm.Builder, name string) uint32 {
	return core.ImportSyscall(b, name)
}

// ImportWAZISyscall declares the WAZI import for a Zephyr syscall on a
// module builder.
func ImportWAZISyscall(b *wasm.Builder, name string) uint32 {
	return wazi.ImportSyscall(b, name)
}

// WAZIPassthroughRatio reports the fraction of WAZI host bindings
// auto-generated from Zephyr's syscall encoding (§5.1: ">85%").
func WAZIPassthroughRatio() float64 { return wazi.PassthroughRatio() }

package gowali

import (
	"gowali/internal/core"
	"gowali/internal/interp"
	"gowali/internal/kernel"
	knet "gowali/internal/kernel/net"
	"gowali/internal/kernel/sched"
	"gowali/internal/kernel/vfs"
	"gowali/internal/trace"
	"gowali/internal/wasi"
	"gowali/internal/wasm"
	"gowali/internal/wazi"
)

// The embedding facade re-exports the supported types of the engine so
// that embedders — including this repository's cmd/ tools and examples —
// never import gowali/internal/... directly. Everything below is public
// API; everything else under internal/ may change freely.

// Trap is a WebAssembly trap, returned as the error from Wait when guest
// execution faults. Stack holds the guest backtrace, innermost frame
// first.
type Trap = interp.Trap

// TrapCode classifies a Trap.
type TrapCode = interp.TrapCode

// Exit reports guest-initiated termination (exit_group); Wait converts
// it to a plain status, so embedders rarely see it directly.
type Exit = interp.Exit

// SafepointScheme selects where the engine polls for asynchronous events
// (Table 3 compares the cost of the choices).
type SafepointScheme = interp.SafepointScheme

// Safepoint schemes, from never to every instruction.
const (
	SafepointNone      = interp.SafepointNone
	SafepointLoop      = interp.SafepointLoop
	SafepointFunc      = interp.SafepointFunc
	SafepointEveryInst = interp.SafepointEveryInst
)

// ExecTier selects the execution engine; see WithExecTier.
type ExecTier = interp.ExecTier

// Execution tiers, fastest first.
const (
	TierFused = interp.TierFused
	TierIR    = interp.TierIR
	TierWire  = interp.TierWire
)

// ParseTier parses a -tier flag value ("fused", "ir" or "wire").
func ParseTier(s string) (ExecTier, error) { return interp.ParseTier(s) }

// SyscallEvent is one observed syscall; see WithSyscallHook.
type SyscallEvent = core.SyscallEvent

// Budget caps a tenant's resources; see WithBudget. The zero value is
// unlimited: each field enforces only when set.
type Budget = sched.Budget

// SchedStats is a snapshot of scheduler activity counters; see
// Runtime.SchedStats.
type SchedStats = sched.Stats

// Scheduling priorities for Budget.Priority. The zero value is
// PriorityNormal.
const (
	PriorityNormal = sched.PrioNormal
	PriorityHigh   = sched.PrioHigh
	PriorityLow    = sched.PrioLow
)

// Kernel is the simulated Linux kernel a WALI-backed runtime executes
// over: VFS, process table, devices, futexes, signals. Obtain a
// runtime's kernel with Runtime.Kernel, or boot one with NewKernel to
// share across runtimes via WithKernel.
type Kernel = kernel.Kernel

// NewKernel boots a fresh simulated kernel.
func NewKernel() *Kernel { return kernel.NewKernel() }

// Preopen grants a WASI directory capability: the guest path maps onto
// the given path in the runtime's kernel filesystem.
type Preopen = wasi.Preopen

// Backend is a mountable filesystem implementation; see WithMount.
// Three ship with the runtime — NewMemFS, NewHostFS and NewOverlayFS —
// and embedders can mount their own implementations of the interface.
type Backend = vfs.Backend

// BackendCaps reports a backend's capability flags (read-only, stable
// inode identity, statfs magic).
type BackendCaps = vfs.Caps

// BackendNodeInfo describes one node of a backend (the backend half of
// a stat), for embedders implementing their own Backend.
type BackendNodeInfo = vfs.NodeInfo

// BackendDirEntry is one directory entry a Backend lists.
type BackendDirEntry = vfs.DirEntry

// MountInfo is one row of Runtime.Mounts.
type MountInfo = vfs.MountInfo

// NewMemFS creates an empty in-memory filesystem backend — a private
// scratch tmpfs when mounted (the kernel's root filesystem is the same
// implementation).
func NewMemFS() Backend { return vfs.NewMemFS(nil) }

// NewHostFS opens a host directory as a mountable backend: guests read
// and write real host files under it, contained by os.Root (symlink
// escapes are rejected by the host kernel). With readOnly set every
// mutation fails with EROFS.
func NewHostFS(hostDir string, readOnly bool) (Backend, error) {
	return vfs.NewHostFS(hostDir, readOnly)
}

// NewOverlayFS stacks copy-up writes over a read-only view of lower:
// reads fall through to lower until a path is first written, deletes
// are recorded as whiteouts, and lower is never mutated. Writes land
// in a fresh in-memory upper layer; use NewOverlayFSOn to supply a
// persistent one. The container idiom: a fleet of guests sharing one
// read-only hostfs image, each with private scratch state on top.
func NewOverlayFS(lower Backend) Backend { return vfs.NewOverlayFS(lower, nil) }

// NewOverlayFSOn is NewOverlayFS with an explicit writable upper
// backend (e.g. a hostfs directory that persists the deltas).
func NewOverlayFSOn(lower, upper Backend) Backend { return vfs.NewOverlayFS(lower, upper) }

// NetBackend is a pluggable network stack serving a runtime kernel's
// AF_INET sockets; see WithNet. Three ship: the default in-kernel
// loopback (NewLoopbackNet), host-socket passthrough (NewHostNet) and
// cross-kernel virtual switch nodes (NewSwitch + Switch.Node).
type NetBackend = knet.Backend

// NetAddr is the kernel-native socket address a NetBackend routes.
type NetAddr = knet.Addr

// HostNet passes guest sockets through to real host TCP/UDP sockets
// under an explicit policy; see WithNet and HostNetConfig.
type HostNet = knet.HostNet

// HostNetConfig is a HostNet's bind-map and outbound allowlist. An
// empty config denies everything.
type HostNetConfig = knet.HostNetConfig

// NewHostNet builds a host-passthrough network backend. A guest
// `bind 0.0.0.0:p; listen` becomes a real host listener at Binds[p]
// (query the resolved address with HostNet.BoundAddr); outbound
// connects must match the Allow patterns.
func NewHostNet(cfg HostNetConfig) *HostNet { return knet.NewHostNet(cfg) }

// Switch is a virtual L4 switch connecting multiple runtime kernels in
// one process; each kernel attaches as a node with its own IPv4
// address and guests exchange stream and datagram traffic across
// kernels. Switches also bridge into a distributed fabric spanning
// processes and hosts: declare local subnets with Switch.SetSubnets,
// then trunk over real TCP with Switch.BridgeListen/BridgeDial —
// destinations outside the process route through the trunk by
// longest-prefix match, relaying across intermediate switches. See
// WithNet and WithNetFlags.
type Switch = knet.Switch

// NewSwitch builds an empty switch fabric; attach runtimes with
// Switch.Node or Switch.AllocNode:
//
//	sw := gowali.NewSwitch()
//	nodeA, _ := sw.Node("10.0.0.1")
//	rtA, _ := gowali.New(gowali.WithNet(nodeA))
func NewSwitch() *Switch { return knet.NewSwitch() }

// BridgeServer is a switch's trunk endpoint (Switch.BridgeListen):
// remote switches join the fabric by dialing its Addr.
type BridgeServer = knet.BridgeServer

// BridgeLink is one dialed trunk (Switch.BridgeDial); closing it
// resets every stream crossing that link.
type BridgeLink = knet.Bridge

// NetPrefix is an IPv4 CIDR block — the unit of fabric address
// assignment (Switch.SetSubnets) and routing announcements.
type NetPrefix = knet.Prefix

// ParseCIDR parses "10.0.1.0/24" (or a bare IP as a /32 host route).
func ParseCIDR(s string) (NetPrefix, error) { return knet.ParseCIDR(s) }

// NewLoopbackNet returns a fresh in-kernel loopback network — the
// default AF_INET backend every kernel boots with (useful to restore
// after a WithKernel-shared kernel had a different backend).
func NewLoopbackNet() NetBackend { return knet.NewLoopback() }

// Collector accumulates syscall profiles from a run; install its Observe
// method with WithSyscallHook.
type Collector = trace.Collector

// NewCollector returns an empty syscall collector.
func NewCollector() *Collector { return trace.NewCollector() }

// StartExport is the entry-point export every guest module provides.
const StartExport = core.StartExport

// Import namespaces of the three shipped host layers.
const (
	WALINamespace = core.Namespace
	WASINamespace = wasi.Namespace
	WAZINamespace = wazi.Namespace
)

// WASI open flags and rights used when hand-building WASI modules with
// the gowali/wasm builder (subset; toolchain-built modules carry their
// own).
const (
	WASIOflagCreat   = wasi.OflagCreat
	WASIRightFdRead  = wasi.RightFdRead
	WASIRightFdWrite = wasi.RightFdWrite
)

// ImportWALISyscall declares the WALI import for a syscall on a module
// builder, returning the function index to Call.
func ImportWALISyscall(b *wasm.Builder, name string) uint32 {
	return core.ImportSyscall(b, name)
}

// ImportWAZISyscall declares the WAZI import for a Zephyr syscall on a
// module builder.
func ImportWAZISyscall(b *wasm.Builder, name string) uint32 {
	return wazi.ImportSyscall(b, name)
}

// WAZIPassthroughRatio reports the fraction of WAZI host bindings
// auto-generated from Zephyr's syscall encoding (§5.1: ">85%").
func WAZIPassthroughRatio() float64 { return wazi.PassthroughRatio() }

package gowali

import (
	"gowali/internal/core"
	"gowali/internal/wasi"
	"gowali/internal/wasm"
)

// attachWASI installs the WASI-over-WALI layer on an engine.
func attachWASI(w *core.WALI) *wasi.Layer {
	return wasi.Attach(w)
}

// wasiTrampoline builds a minimal module importing fd_write and exporting
// a forwarder, for the layering benchmark.
func wasiTrampoline() *wasm.Module {
	b := wasm.NewBuilder("wasibench")
	i32 := wasm.I32
	fdw := b.ImportFunc(wasi.Namespace, "fd_write",
		[]wasm.ValType{i32, i32, i32, i32}, []wasm.ValType{i32})
	b.Memory(4, 16, false)
	f := b.NewFunc("w_fd_write", []wasm.ValType{i32, i32, i32, i32}, []wasm.ValType{i32})
	f.LocalGet(0).LocalGet(1).LocalGet(2).LocalGet(3).Call(fdw)
	f.Finish()
	b.NewFunc(core.StartExport, nil, nil).Finish()
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

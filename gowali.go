package gowali

import (
	"fmt"
	"io"
	"time"

	"gowali/internal/apps"
	"gowali/internal/core"
	"gowali/internal/kernel"
	"gowali/internal/wasi"
	"gowali/internal/wazi"
)

// config accumulates functional options before the host layer consumes
// them.
type config struct {
	kernel *Kernel
	scheme SafepointScheme
	strict bool
	hook   func(SyscallEvent)
	host   Host

	stdin  io.Reader
	stdout io.Writer
	stderr io.Writer
}

// Option configures a Runtime under construction; see the With*
// functions.
type Option func(*config)

// WithKernel runs the runtime over an existing simulated kernel instead
// of booting a fresh one — multiple runtimes (or successive runs) can
// share one kernel's filesystem, process table and devices. WALI-backed
// hosts only.
func WithKernel(k *Kernel) Option { return func(c *config) { c.kernel = k } }

// WithHost selects the host layer the runtime exposes to modules:
// WALIHost (default), WASIHost or WAZIHost.
func WithHost(h Host) Option { return func(c *config) { c.host = h } }

// WithSafepointScheme selects where the engine polls for asynchronous
// events (signals, cancellation). Default: SafepointLoop, the paper's
// implementation choice.
func WithSafepointScheme(s SafepointScheme) Option {
	return func(c *config) { c.scheme = s }
}

// WithStrict makes known-but-unimplemented syscalls trap instead of
// returning -ENOSYS (§3.5). WALI-backed hosts only.
func WithStrict(strict bool) Option { return func(c *config) { c.strict = strict } }

// WithSyscallHook observes every syscall after it completes — profiling,
// tracing, Fig. 2/7-style attribution. fn must be safe for concurrent
// use; a Collector's Observe method is a ready-made hook. WALI-backed
// hosts only.
func WithSyscallHook(fn func(SyscallEvent)) Option {
	return func(c *config) { c.hook = fn }
}

// WithStdio connects the guest's standard streams to host streams
// (WALI-backed hosts; the WAZI board console is not redirectable):
//
//   - in feeds the guest console's input queue (stdin reads);
//   - out receives a live copy of console output (stdout and any other
//     tty writes) in addition to the inspectable ConsoleOutput buffer;
//   - errw, when non-nil, becomes the initial process's fd 2, separating
//     stderr from the console entirely.
//
// Any stream may be nil to keep the default (buffered console, empty
// stdin).
func WithStdio(in io.Reader, out, errw io.Writer) Option {
	return func(c *config) {
		c.stdin, c.stdout, c.stderr = in, out, errw
	}
}

// Host is the kernel-interface layer a Runtime exposes to its modules.
// Three implementations ship: WALIHost (the Linux interface), WASIHost
// (WASI preview1 layered over WALI) and WAZIHost (the Zephyr interface).
// The interface is sealed; the engine behind it can be resharded freely.
type Host interface {
	fmt.Stringer
	apply(r *Runtime, c *config) error
}

// waliHost backs both WALIHost and WASIHost.
type waliHost struct {
	wasi     bool
	preopens []Preopen
}

func (h *waliHost) String() string {
	if h.wasi {
		return "wasi-over-wali"
	}
	return "wali"
}

func (h *waliHost) apply(r *Runtime, c *config) error {
	k := c.kernel
	if k == nil {
		k = kernel.NewKernel()
	}
	w := core.NewWith(k)
	w.Scheme = c.scheme
	w.Strict = c.strict
	if c.hook != nil {
		w.Hook = c.hook
	}
	if h.wasi {
		wasi.Attach(w, h.preopens...)
	}
	r.wali = w

	if c.stdout != nil {
		k.Console.SetTee(c.stdout)
	}
	if c.stdin != nil {
		go feedConsole(k.Console, c.stdin)
	}
	if c.stderr != nil {
		r.stderrPath = "/dev/host-stderr"
		k.Mkdev(r.stderrPath, &kernel.StreamDevice{W: c.stderr})
	}
	return nil
}

// feedConsole pumps a host reader into the guest console until EOF.
func feedConsole(con *kernel.ConsoleDevice, in io.Reader) {
	buf := make([]byte, 4096)
	for {
		n, err := in.Read(buf)
		if n > 0 {
			con.FeedInput(buf[:n])
		}
		if err != nil {
			con.CloseInput()
			return
		}
	}
}

// waziHost runs modules over the simulated Zephyr board.
type waziHost struct{}

func (waziHost) String() string { return "wazi" }

func (waziHost) apply(r *Runtime, c *config) error {
	if c.kernel != nil {
		return fmt.Errorf("gowali: WithKernel requires a WALI-backed host")
	}
	if c.strict {
		return fmt.Errorf("gowali: WithStrict requires a WALI-backed host")
	}
	if c.hook != nil {
		return fmt.Errorf("gowali: WithSyscallHook requires a WALI-backed host")
	}
	w := wazi.New()
	w.Scheme = c.scheme
	r.wazi = w
	return nil
}

// WALIHost exposes the WebAssembly Linux Interface: the ~150-call Linux
// userspace syscall surface, the 1-to-1 process model (fork, execve,
// threads), virtual signals, mmap and the simulated kernel. This is the
// default host layer.
func WALIHost() Host { return &waliHost{} }

// WASIHost exposes WASI preview1, implemented as a layer over WALI
// (Fig. 6): every WASI call bottoms out in WALI kernel-interface calls on
// the same engine, so syscall hooks observe the decomposition. Preopens
// grant directory capabilities; default is the filesystem root.
func WASIHost(preopens ...Preopen) Host {
	return &waliHost{wasi: true, preopens: preopens}
}

// WAZIHost exposes WAZI, the thin kernel interface for Zephyr RTOS
// (§5.1), over a simulated board. Process-model options (WithKernel,
// WithStrict, WithSyscallHook, WithStdio) do not apply.
func WAZIHost() Host { return waziHost{} }

// Runtime is an embedded gowali engine: one host layer over one kernel,
// spawning any number of processes. Create with New; it is safe for
// concurrent use.
type Runtime struct {
	host Host

	wali *core.WALI // WALI-backed hosts
	wazi *wazi.WAZI // WAZI host

	stderrPath string // device path for redirected fd 2, "" if none
}

// New builds a runtime from functional options. With no options it is a
// WALI runtime over a freshly booted kernel with loop-head safepoints —
// the paper's default configuration.
func New(opts ...Option) (*Runtime, error) {
	c := &config{scheme: SafepointLoop, host: WALIHost()}
	for _, o := range opts {
		o(c)
	}
	r := &Runtime{host: c.host}
	if err := c.host.apply(r, c); err != nil {
		return nil, err
	}
	return r, nil
}

// Host returns the runtime's host layer.
func (r *Runtime) Host() Host { return r.host }

// Kernel returns the simulated Linux kernel behind a WALI-backed host
// (filesystem, process table, devices), or nil for WAZI.
func (r *Runtime) Kernel() *Kernel {
	if r.wali == nil {
		return nil
	}
	return r.wali.Kernel
}

// Board describes the simulated Zephyr board of a WAZI runtime ("" for
// WALI-backed hosts).
func (r *Runtime) Board() string {
	if r.wazi == nil {
		return ""
	}
	return r.wazi.Z.String()
}

// ConsoleOutput returns everything guests wrote to the console so far
// (the WAZI board console for WAZIHost runtimes).
func (r *Runtime) ConsoleOutput() []byte {
	if r.wazi != nil {
		return r.wazi.Z.ConsoleOutput()
	}
	return r.wali.Kernel.Console.Output()
}

// WaitAll blocks until every process spawned through this runtime has
// finished.
func (r *Runtime) WaitAll() {
	if r.wali != nil {
		r.wali.WaitAll()
	}
}

// InstallBinary writes a compiled module into the kernel VFS as an
// executable .wasm file, the execve deployment mode (§4.1). WALI-backed
// hosts only.
func (r *Runtime) InstallBinary(path string, m *Module) error {
	if r.wali == nil {
		return fmt.Errorf("gowali: InstallBinary requires a WALI-backed host")
	}
	return r.wali.InstallBinary(path, m.compiled.Module)
}

// SyscallStats reports accumulated syscall handler time and count for a
// process (Fig. 7 attribution). WALI-backed hosts only.
func (r *Runtime) SyscallStats(pid int32) (time.Duration, uint64) {
	if r.wali == nil {
		return 0, 0
	}
	return r.wali.SyscallStats(pid)
}

// Apps returns the names of the built-in ported applications (the
// runnable subset of the paper's Table 1 suite).
func Apps() []string {
	var out []string
	for _, a := range apps.Runnable() {
		out = append(out, a.Name)
	}
	return out
}

// RunApp builds, installs and executes a built-in ported application at
// the given workload scale on this runtime, returning its exit status.
// WALI-backed hosts only; runs synchronously.
func (r *Runtime) RunApp(name string, scale int) (int32, error) {
	if r.wali == nil {
		return -1, fmt.Errorf("gowali: RunApp requires a WALI-backed host")
	}
	a, err := apps.ByName(name)
	if err != nil {
		return -1, err
	}
	_, status, err := apps.RunOn(r.wali, a, scale)
	return status, err
}

package gowali

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"gowali/internal/apps"
	"gowali/internal/core"
	"gowali/internal/kernel"
	"gowali/internal/kernel/sched"
	"gowali/internal/kernel/vfs"
	"gowali/internal/obs"
	"gowali/internal/wasi"
	"gowali/internal/wazi"
)

// config accumulates functional options before the host layer consumes
// them.
type config struct {
	kernel *Kernel
	scheme SafepointScheme
	tier   ExecTier
	strict bool
	hook   func(SyscallEvent)
	host   Host
	mounts []mountSpec
	net    NetBackend
	sched  *schedSpec
	budget *Budget

	stdin  io.Reader
	stdout io.Writer
	stderr io.Writer

	// Observability plane (see obs.go): optional tracer, metrics
	// registry and strace output.
	tracer  *Tracer
	metrics *Metrics
	straceW io.Writer
}

// schedSpec is one WithScheduler request.
type schedSpec struct {
	workers int
	quantum time.Duration
}

// mountSpec is one WithMount request, applied at kernel boot.
type mountSpec struct {
	path string
	b    Backend
	opts vfs.MountOptions
}

// Option configures a Runtime under construction; see the With*
// functions.
type Option func(*config)

// WithKernel runs the runtime over an existing simulated kernel instead
// of booting a fresh one — multiple runtimes (or successive runs) can
// share one kernel's filesystem, process table and devices. WALI-backed
// hosts only.
func WithKernel(k *Kernel) Option { return func(c *config) { c.kernel = k } }

// WithHost selects the host layer the runtime exposes to modules:
// WALIHost (default), WASIHost or WAZIHost.
func WithHost(h Host) Option { return func(c *config) { c.host = h } }

// WithSafepointScheme selects where the engine polls for asynchronous
// events (signals, cancellation). Default: SafepointLoop, the paper's
// implementation choice.
func WithSafepointScheme(s SafepointScheme) Option {
	return func(c *config) { c.scheme = s }
}

// WithExecTier selects the execution engine: TierFused (default, the
// superinstruction engine), TierIR (plain pre-decoded IR) or TierWire
// (the legacy wire-bytecode engine, kept for differential testing). All
// tiers are semantically identical; they differ only in dispatch cost.
func WithExecTier(t ExecTier) Option {
	return func(c *config) { c.tier = t }
}

// WithStrict makes known-but-unimplemented syscalls trap instead of
// returning -ENOSYS (§3.5). WALI-backed hosts only.
func WithStrict(strict bool) Option { return func(c *config) { c.strict = strict } }

// WithSyscallHook observes every syscall after it completes — profiling,
// tracing, Fig. 2/7-style attribution. fn must be safe for concurrent
// use; a Collector's Observe method is a ready-made hook. WALI-backed
// hosts only.
func WithSyscallHook(fn func(SyscallEvent)) Option {
	return func(c *config) { c.hook = fn }
}

// WithMount mounts a filesystem backend at guestPath in the runtime's
// kernel (WALI-backed hosts only). The mountpoint directory chain is
// created if missing. Backends come from NewHostFS (a host directory),
// NewMemFS (a scratch tmpfs) or NewOverlayFS (copy-up writes over a
// read-only lower layer); anything implementing the vfs Backend
// interface mounts the same way. Repeat the option for multiple
// mounts; MountReadOnly() makes one read-only:
//
//	host, _ := gowali.NewHostFS("/srv/data", false)
//	rt, _ := gowali.New(
//		gowali.WithMount("/data", host),
//		gowali.WithMount("/scratch", gowali.NewMemFS()),
//	)
func WithMount(guestPath string, b Backend, opts ...MountOption) Option {
	return func(c *config) {
		spec := mountSpec{path: guestPath, b: b}
		for _, o := range opts {
			o(&spec.opts)
		}
		c.mounts = append(c.mounts, spec)
	}
}

// MountOption configures one WithMount (or Runtime.Mount) call.
type MountOption func(*vfs.MountOptions)

// MountReadOnly mounts the backend read-only: every mutation through
// the mount fails with EROFS, whatever the backend itself allows.
func MountReadOnly() MountOption {
	return func(o *vfs.MountOptions) { o.ReadOnly = true }
}

// WithMountSpec parses a CLI-style mount specification of the form
// "hostdir=/guestpath[:ro]" into a hostfs WithMount option. The cmd/
// tools' repeatable -dir flags are built on it.
func WithMountSpec(spec string) (Option, error) {
	hostDir, guestPath, ro, err := parseMountSpec(spec)
	if err != nil {
		return nil, err
	}
	b, err := NewHostFS(hostDir, ro)
	if err != nil {
		return nil, fmt.Errorf("gowali: mount %q: %w", spec, err)
	}
	if ro {
		return WithMount(guestPath, b, MountReadOnly()), nil
	}
	return WithMount(guestPath, b), nil
}

func parseMountSpec(spec string) (hostDir, guestPath string, ro bool, err error) {
	s := spec
	if rest, ok := strings.CutSuffix(s, ":ro"); ok {
		s, ro = rest, true
	}
	hostDir, guestPath, ok := strings.Cut(s, "=")
	if !ok || hostDir == "" || guestPath == "" || !strings.HasPrefix(guestPath, "/") {
		return "", "", false, fmt.Errorf("gowali: bad mount spec %q (want hostdir=/guestpath[:ro])", spec)
	}
	return hostDir, guestPath, ro, nil
}

// WithNet selects the runtime kernel's AF_INET network stack
// (WALI-backed hosts only). The default is the in-kernel loopback;
// NewHostNet passes guest sockets through to real host sockets under
// an explicit bind-map and allowlist, and NewSwitch().Node attaches
// the kernel to a cross-kernel virtual switch so guests in different
// runtimes exchange traffic:
//
//	hn := gowali.NewHostNet(gowali.HostNetConfig{
//		Binds: map[uint16]string{8080: "127.0.0.1:18080"},
//	})
//	rt, _ := gowali.New(gowali.WithNet(hn))
//
// AF_UNIX sockets always stay on the kernel-private loopback, like a
// network namespace's abstract socket space.
func WithNet(b NetBackend) Option { return func(c *config) { c.net = b } }

// WithNetFlags parses CLI-style -net directives into one WithNet
// option (the cmd/ tools' repeatable -net flag feeds it):
//
//	loop                     the in-kernel loopback (default)
//	host                     host passthrough, deny-all policy
//	host=PORT:HOSTADDR       map guest PORT to a host listen address
//	                         (repeatable; ":0" picks a free host port)
//	allow=PATTERN            allow outbound dials: "ip:port", "*:port",
//	                         "ip:*" or "*" (repeatable; implies host)
//	subnet=CIDR              fabric mode: this process's local subnet
//	                         ("10.0.1.0/24", repeatable); the kernel's
//	                         node address is allocated from it
//	node=IP                  fabric mode: attach the kernel under an
//	                         explicit node address instead
//	bridge=HOST:PORT         fabric mode: accept trunk links from
//	                         other processes at this TCP endpoint
//	join=HOST:PORT           fabric mode: dial into a fabric through
//	                         a remote bridge= endpoint (repeatable)
//
// The fabric directives build a distributed switch: two wali-run
// processes, one with -net bridge=, the other with -net join=, form
// one address space their guests exchange traffic across. Fabric mode
// conflicts with the host/loop directives. No directives means no
// option (loopback).
func WithNetFlags(specs ...string) (Option, error) {
	if len(specs) == 0 {
		return func(*config) {}, nil
	}
	cfg := HostNetConfig{Binds: map[uint16]string{}}
	hostNet, loop, fabric := false, false, false
	var subnets, bridges, joins []string
	nodeIP := ""
	for _, spec := range specs {
		switch {
		case spec == "loop" || spec == "loopback":
			loop = true
		case spec == "host":
			hostNet = true
		case strings.HasPrefix(spec, "host="):
			portStr, hostAddr, ok := strings.Cut(strings.TrimPrefix(spec, "host="), ":")
			port, err := strconv.ParseUint(portStr, 10, 16)
			if !ok || err != nil || hostAddr == "" {
				return nil, fmt.Errorf("gowali: bad -net spec %q (want host=GUESTPORT:HOSTADDR)", spec)
			}
			cfg.Binds[uint16(port)] = hostAddr
			hostNet = true
		case strings.HasPrefix(spec, "allow="):
			pat := strings.TrimPrefix(spec, "allow=")
			if pat == "" {
				return nil, fmt.Errorf("gowali: bad -net spec %q", spec)
			}
			cfg.Allow = append(cfg.Allow, pat)
			hostNet = true
		case strings.HasPrefix(spec, "subnet="):
			cidr := strings.TrimPrefix(spec, "subnet=")
			if _, err := ParseCIDR(cidr); err != nil {
				return nil, fmt.Errorf("gowali: bad -net spec %q: %v", spec, err)
			}
			subnets = append(subnets, cidr)
			fabric = true
		case strings.HasPrefix(spec, "node="):
			if nodeIP != "" {
				return nil, fmt.Errorf("gowali: -net node= given twice (one kernel, one node)")
			}
			nodeIP = strings.TrimPrefix(spec, "node=")
			if nodeIP == "" {
				return nil, fmt.Errorf("gowali: bad -net spec %q", spec)
			}
			fabric = true
		case strings.HasPrefix(spec, "bridge="):
			addr := strings.TrimPrefix(spec, "bridge=")
			if addr == "" {
				return nil, fmt.Errorf("gowali: bad -net spec %q", spec)
			}
			bridges = append(bridges, addr)
			fabric = true
		case strings.HasPrefix(spec, "join="):
			addr := strings.TrimPrefix(spec, "join=")
			if addr == "" {
				return nil, fmt.Errorf("gowali: bad -net spec %q", spec)
			}
			joins = append(joins, addr)
			fabric = true
		default:
			return nil, fmt.Errorf("gowali: bad -net spec %q", spec)
		}
	}
	if fabric && (hostNet || loop) {
		return nil, fmt.Errorf("gowali: fabric directives (subnet/node/bridge/join) conflict with host/loop")
	}
	if hostNet && loop {
		return nil, fmt.Errorf("gowali: -net loop conflicts with host directives")
	}
	if fabric {
		if len(subnets) == 0 && nodeIP == "" {
			return nil, fmt.Errorf("gowali: fabric mode needs -net subnet=CIDR or -net node=IP")
		}
		sw := NewSwitch()
		if err := sw.SetSubnets(subnets...); err != nil {
			return nil, err
		}
		var node NetBackend
		var err error
		if nodeIP != "" {
			node, err = sw.Node(nodeIP)
		} else {
			node, _, err = sw.AllocNode()
		}
		if err != nil {
			return nil, err
		}
		for _, addr := range bridges {
			if _, err := sw.BridgeListen(addr); err != nil {
				return nil, fmt.Errorf("gowali: -net bridge=%s: %v", addr, err)
			}
		}
		for _, addr := range joins {
			if _, err := sw.BridgeDial(addr); err != nil {
				return nil, fmt.Errorf("gowali: -net join=%s: %v", addr, err)
			}
		}
		return WithNet(node), nil
	}
	if !hostNet {
		return WithNet(nil), nil // explicit loopback
	}
	return WithNet(NewHostNet(cfg)), nil
}

// WithScheduler puts the runtime's guests under the multicore guest
// scheduler: guest goroutines multiplex onto `workers` run slots
// (0 = GOMAXPROCS) with safepoint-driven time-slice preemption every
// `quantum` (0 = the 2ms default). Without this option every guest runs
// unconstrained on its own goroutine, the original behavior. Preemption
// is invisible to guests: it happens only at safepoints, where execution
// state is fully resumable. WALI-backed hosts only.
func WithScheduler(workers int, quantum time.Duration) Option {
	return func(c *config) { c.sched = &schedSpec{workers: workers, quantum: quantum} }
}

// WithBudget places every process of the runtime under one tenant budget
// domain: memory ceilings enforced at memory.grow/mmap/brk and fork, fd
// caps in the descriptor table, and (when WithScheduler is active) CPU
// ceilings and shares charged from scheduled run time. A CPU overrun
// kills the tenant's processes with SIGKILL. Zero fields are unlimited.
// WALI-backed hosts only.
func WithBudget(b Budget) Option {
	return func(c *config) { c.budget = &b }
}

// WithStdio connects the guest's standard streams to host streams
// (WALI-backed hosts; the WAZI board console is not redirectable):
//
//   - in feeds the guest console's input queue (stdin reads);
//   - out receives a live copy of console output (stdout and any other
//     tty writes) in addition to the inspectable ConsoleOutput buffer;
//   - errw, when non-nil, becomes the initial process's fd 2, separating
//     stderr from the console entirely.
//
// Any stream may be nil to keep the default (buffered console, empty
// stdin).
func WithStdio(in io.Reader, out, errw io.Writer) Option {
	return func(c *config) {
		c.stdin, c.stdout, c.stderr = in, out, errw
	}
}

// Host is the kernel-interface layer a Runtime exposes to its modules.
// Three implementations ship: WALIHost (the Linux interface), WASIHost
// (WASI preview1 layered over WALI) and WAZIHost (the Zephyr interface).
// The interface is sealed; the engine behind it can be resharded freely.
type Host interface {
	fmt.Stringer
	apply(r *Runtime, c *config) error
}

// waliHost backs both WALIHost and WASIHost.
type waliHost struct {
	wasi     bool
	preopens []Preopen
}

func (h *waliHost) String() string {
	if h.wasi {
		return "wasi-over-wali"
	}
	return "wali"
}

func (h *waliHost) apply(r *Runtime, c *config) error {
	k := c.kernel
	if k == nil {
		k = kernel.NewKernel()
	}
	w := core.NewWith(k)
	w.Scheme = c.scheme
	w.Tier = c.tier
	w.Strict = c.strict
	if c.hook != nil {
		w.Hook = c.hook
	}
	w.Trace = c.tracer
	w.Metrics = c.metrics
	if c.straceW != nil {
		w.Strace = obs.NewStraceWriter(c.straceW)
	}
	if c.sched != nil {
		w.Sched = sched.New(sched.Config{
			Workers: c.sched.workers, Quantum: c.sched.quantum,
			Trace: c.tracer, Metrics: c.metrics,
		})
	}
	if c.budget != nil {
		w.DefaultTenant = w.NewTenant("runtime", *c.budget)
	}
	if h.wasi {
		wasi.Attach(w, h.preopens...)
	}
	r.wali = w

	if c.stdout != nil {
		k.Console.SetTee(c.stdout)
	}
	if c.stdin != nil {
		go feedConsole(k.Console, c.stdin)
	}
	if c.stderr != nil {
		r.stderrPath = "/dev/host-stderr"
		k.Mkdev(r.stderrPath, &kernel.StreamDevice{W: c.stderr})
	}
	for _, spec := range c.mounts {
		if err := mountOn(k, spec.path, spec.b, spec.opts); err != nil {
			return err
		}
	}
	if c.net != nil {
		k.SetNetBackend(c.net)
	}
	// After SetNetBackend, so a switch-fabric node inherits the plane
	// before any trunk links form.
	if c.tracer != nil || c.metrics != nil {
		k.SetObs(c.tracer, c.metrics)
	}
	return nil
}

// mountOn creates the mountpoint chain and grafts b there.
func mountOn(k *Kernel, guestPath string, b Backend, opts vfs.MountOptions) error {
	if b == nil {
		return fmt.Errorf("gowali: WithMount %s: nil backend", guestPath)
	}
	if k.FS.MkdirAll(guestPath, 0o755) == nil {
		return fmt.Errorf("gowali: WithMount %s: cannot create mountpoint", guestPath)
	}
	if errno := k.FS.Mount(guestPath, b, opts); errno != 0 {
		return fmt.Errorf("gowali: mount %s: %v", guestPath, errno)
	}
	return nil
}

// feedConsole pumps a host reader into the guest console until EOF.
func feedConsole(con *kernel.ConsoleDevice, in io.Reader) {
	buf := make([]byte, 4096)
	for {
		n, err := in.Read(buf)
		if n > 0 {
			con.FeedInput(buf[:n])
		}
		if err != nil {
			con.CloseInput()
			return
		}
	}
}

// waziHost runs modules over the simulated Zephyr board.
type waziHost struct{}

func (waziHost) String() string { return "wazi" }

func (waziHost) apply(r *Runtime, c *config) error {
	if c.kernel != nil {
		return fmt.Errorf("gowali: WithKernel requires a WALI-backed host")
	}
	if c.strict {
		return fmt.Errorf("gowali: WithStrict requires a WALI-backed host")
	}
	if c.hook != nil {
		return fmt.Errorf("gowali: WithSyscallHook requires a WALI-backed host")
	}
	if len(c.mounts) > 0 {
		return fmt.Errorf("gowali: WithMount requires a WALI-backed host (the WAZI board has a flat flash filesystem; preload it with InstallBoardFile)")
	}
	if c.net != nil {
		return fmt.Errorf("gowali: WithNet requires a WALI-backed host (the WAZI board has no socket surface)")
	}
	if c.sched != nil {
		return fmt.Errorf("gowali: WithScheduler requires a WALI-backed host")
	}
	if c.budget != nil {
		return fmt.Errorf("gowali: WithBudget requires a WALI-backed host")
	}
	if c.tracer != nil || c.metrics != nil || c.straceW != nil {
		return fmt.Errorf("gowali: WithTracer/WithMetrics/WithStrace require a WALI-backed host (the WAZI board has no syscall plane)")
	}
	w := wazi.New()
	w.Scheme = c.scheme
	w.Tier = c.tier
	r.wazi = w
	return nil
}

// WALIHost exposes the WebAssembly Linux Interface: the ~150-call Linux
// userspace syscall surface, the 1-to-1 process model (fork, execve,
// threads), virtual signals, mmap and the simulated kernel. This is the
// default host layer.
func WALIHost() Host { return &waliHost{} }

// WASIHost exposes WASI preview1, implemented as a layer over WALI
// (Fig. 6): every WASI call bottoms out in WALI kernel-interface calls on
// the same engine, so syscall hooks observe the decomposition. Preopens
// grant directory capabilities; default is the filesystem root.
func WASIHost(preopens ...Preopen) Host {
	return &waliHost{wasi: true, preopens: preopens}
}

// WAZIHost exposes WAZI, the thin kernel interface for Zephyr RTOS
// (§5.1), over a simulated board. Process-model options (WithKernel,
// WithStrict, WithSyscallHook, WithStdio) do not apply.
func WAZIHost() Host { return waziHost{} }

// Runtime is an embedded gowali engine: one host layer over one kernel,
// spawning any number of processes. Create with New; it is safe for
// concurrent use.
type Runtime struct {
	host Host

	wali *core.WALI // WALI-backed hosts
	wazi *wazi.WAZI // WAZI host

	stderrPath string // device path for redirected fd 2, "" if none

	// msrv is the ServeMetrics HTTP server, stopped by Close.
	msrvMu sync.Mutex
	msrv   *obs.MetricsServer
}

// New builds a runtime from functional options. With no options it is a
// WALI runtime over a freshly booted kernel with loop-head safepoints —
// the paper's default configuration.
func New(opts ...Option) (*Runtime, error) {
	c := &config{scheme: SafepointLoop, host: WALIHost()}
	for _, o := range opts {
		o(c)
	}
	r := &Runtime{host: c.host}
	if err := c.host.apply(r, c); err != nil {
		return nil, err
	}
	return r, nil
}

// Host returns the runtime's host layer.
func (r *Runtime) Host() Host { return r.host }

// Kernel returns the simulated Linux kernel behind a WALI-backed host
// (filesystem, process table, devices), or nil for WAZI.
func (r *Runtime) Kernel() *Kernel {
	if r.wali == nil {
		return nil
	}
	return r.wali.Kernel
}

// Board describes the simulated Zephyr board of a WAZI runtime ("" for
// WALI-backed hosts).
func (r *Runtime) Board() string {
	if r.wazi == nil {
		return ""
	}
	return r.wazi.Z.String()
}

// ConsoleOutput returns everything guests wrote to the console so far
// (the WAZI board console for WAZIHost runtimes).
func (r *Runtime) ConsoleOutput() []byte {
	if r.wazi != nil {
		return r.wazi.Z.ConsoleOutput()
	}
	return r.wali.Kernel.Console.Output()
}

// WaitAll blocks until every process spawned through this runtime has
// finished.
func (r *Runtime) WaitAll() {
	if r.wali != nil {
		r.wali.WaitAll()
	}
}

// Close shuts the runtime's kernel down: its network backends release
// their listeners, queues and (for switch-fabric nodes) the node
// address, so a shared Switch can reuse it; the metrics HTTP server
// (ServeMetrics) stops and the kernel's metric collectors unregister.
// Idempotent. Callers sharing one kernel across runtimes (WithKernel)
// should Close only once, when the kernel is done for good.
func (r *Runtime) Close() error {
	r.msrvMu.Lock()
	msrv := r.msrv
	r.msrv = nil
	r.msrvMu.Unlock()
	msrv.Close()
	if r.wali != nil {
		r.wali.Kernel.Shutdown()
	}
	return nil
}

// Mount grafts a filesystem backend at guestPath on a live runtime
// (the boot-time form is WithMount). WALI-backed hosts only.
func (r *Runtime) Mount(guestPath string, b Backend, opts ...MountOption) error {
	if r.wali == nil {
		return fmt.Errorf("gowali: Mount requires a WALI-backed host")
	}
	var mo vfs.MountOptions
	for _, o := range opts {
		o(&mo)
	}
	return mountOn(r.wali.Kernel, guestPath, b, mo)
}

// Unmount detaches the mount at guestPath. Guests holding files open
// on it keep using the old backend (lazy unmount); fresh path lookups
// see the underlying directory.
func (r *Runtime) Unmount(guestPath string) error {
	if r.wali == nil {
		return fmt.Errorf("gowali: Unmount requires a WALI-backed host")
	}
	if errno := r.wali.Kernel.FS.Unmount(guestPath); errno != 0 {
		return fmt.Errorf("gowali: unmount %s: %v", guestPath, errno)
	}
	return nil
}

// Mounts lists the runtime kernel's mount table (nil for WAZI).
func (r *Runtime) Mounts() []MountInfo {
	if r.wali == nil {
		return nil
	}
	return r.wali.Kernel.FS.Mounts()
}

// InstallBoardFile preloads a file into a WAZI runtime's flat flash
// filesystem (the board analogue of a mount: wazi-run's -dir flag maps
// a host directory in with it). WAZI hosts only.
func (r *Runtime) InstallBoardFile(name string, data []byte) error {
	if r.wazi == nil {
		return fmt.Errorf("gowali: InstallBoardFile requires the WAZI host")
	}
	r.wazi.Z.PreloadFile(name, data)
	return nil
}

// BoardFiles snapshots a WAZI runtime's flash filesystem (name →
// contents), e.g. to write guest output back to the host after a run.
// Nil for WALI-backed hosts.
func (r *Runtime) BoardFiles() map[string][]byte {
	if r.wazi == nil {
		return nil
	}
	return r.wazi.Z.FileSnapshot()
}

// InstallBinary writes a compiled module into the kernel VFS as an
// executable .wasm file, the execve deployment mode (§4.1). WALI-backed
// hosts only.
func (r *Runtime) InstallBinary(path string, m *Module) error {
	if r.wali == nil {
		return fmt.Errorf("gowali: InstallBinary requires a WALI-backed host")
	}
	return r.wali.InstallBinary(path, m.compiled.Module)
}

// SyscallStats reports accumulated syscall handler time and count for a
// process (Fig. 7 attribution). WALI-backed hosts only.
func (r *Runtime) SyscallStats(pid int32) (time.Duration, uint64) {
	if r.wali == nil {
		return 0, 0
	}
	return r.wali.SyscallStats(pid)
}

// SchedStats snapshots the guest scheduler's activity counters, or the
// zero Stats when the runtime was built without WithScheduler.
func (r *Runtime) SchedStats() SchedStats {
	if r.wali == nil || r.wali.Sched == nil {
		return SchedStats{}
	}
	return r.wali.Sched.Stats()
}

// Apps returns the names of the built-in ported applications (the
// runnable subset of the paper's Table 1 suite).
func Apps() []string {
	var out []string
	for _, a := range apps.Runnable() {
		out = append(out, a.Name)
	}
	return out
}

// RunApp builds, installs and executes a built-in ported application at
// the given workload scale on this runtime, returning its exit status.
// WALI-backed hosts only; runs synchronously.
func (r *Runtime) RunApp(name string, scale int) (int32, error) {
	if r.wali == nil {
		return -1, fmt.Errorf("gowali: RunApp requires a WALI-backed host")
	}
	a, err := apps.ByName(name)
	if err != nil {
		return -1, err
	}
	_, status, err := apps.RunOn(r.wali, a, scale)
	return status, err
}

package gowali

import (
	"fmt"
	"io"
	"os"

	"gowali/internal/interp"
	"gowali/internal/wasm"
)

// Module is a compiled WebAssembly module: decoded, validated, and
// pre-translated to the engine's flat IR. The translation is cached in
// the Module, so every spawn — fork/exec storms, multi-tenant fan-out,
// repeated invocations of one service binary — instantiates directly
// from the cached IR and skips decoding and translation entirely. A
// Module is immutable and safe to share across runtimes and goroutines.
type Module struct {
	name     string
	compiled *interp.Compiled
}

// CompileModule reads a binary Wasm module, validates it and translates
// it once for any number of spawns.
func CompileModule(r io.Reader) (*Module, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("gowali: read module: %w", err)
	}
	m, err := wasm.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("gowali: decode module: %w", err)
	}
	return compile(m, m.Name)
}

// CompileFile reads, validates and translates a .wasm binary from the
// host filesystem.
func CompileFile(path string) (*Module, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := CompileModule(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.name == "" {
		m.name = path
	}
	return m, nil
}

// CompileBuilt validates and translates an in-memory module object —
// the path for modules produced with the gowali/wasm builder DSL rather
// than read from a binary.
func CompileBuilt(m *wasm.Module) (*Module, error) {
	return compile(m, m.Name)
}

func compile(m *wasm.Module, name string) (*Module, error) {
	if err := wasm.Validate(m); err != nil {
		return nil, fmt.Errorf("gowali: validate module: %w", err)
	}
	c, err := interp.Compile(m)
	if err != nil {
		return nil, fmt.Errorf("gowali: compile module: %w", err)
	}
	return &Module{name: name, compiled: c}, nil
}

// Name returns the module's diagnostic name (custom name section, file
// path, or builder name; possibly empty).
func (m *Module) Name() string { return m.name }

package gowali

import (
	"context"
	"fmt"
	"sync/atomic"

	"gowali/internal/core"
	"gowali/internal/interp"
	"gowali/internal/linux"
	"gowali/internal/wazi"
)

// KilledStatus is the exit status of a process terminated by context
// cancellation: 128 + SIGKILL, the shell convention.
const KilledStatus = 128 + linux.SIGKILL

// Process is a running guest process spawned through Runtime.Spawn. It
// executes on its own goroutine (the 1-to-1 process model); observe it
// with Wait, or terminate it early with Kill or by cancelling the spawn
// context.
type Process struct {
	wp *core.Process // WALI-backed hosts

	// WAZI host: the run goroutine reports through these; zKilled is the
	// cancellation/kill latch polled at safepoints.
	zp      *wazi.Process
	zDone   chan struct{}
	zKilled atomic.Bool
	zStatus int32
	zErr    error
}

// Spawn starts a process executing m's _start export, with the given
// argument and environment vectors (ignored by the WAZI host, whose
// applications take no vectors). The process runs on its own goroutine.
//
// ctx governs the process's lifetime: when it is cancelled, the engine
// delivers SIGKILL, which terminates the guest at the next safepoint
// (per the runtime's SafepointScheme) with status KilledStatus. A guest
// blocked in an uninterruptible syscall is killed when the syscall
// returns. Instantiation reuses m's cached pre-decoded IR.
func (r *Runtime) Spawn(ctx context.Context, m *Module, argv, env []string) (*Process, error) {
	name := m.name
	if len(argv) > 0 {
		name = argv[0]
	}
	if r.wazi != nil {
		return r.spawnWAZI(ctx, m)
	}
	wp, err := r.wali.SpawnCompiled(m.compiled, name, argv, env)
	if err != nil {
		return nil, err
	}
	if r.stderrPath != "" {
		wp.KP.OpenDevOn(2, r.stderrPath)
	}
	p := &Process{wp: wp}
	if ctx.Done() != nil {
		kp := wp.KP
		stop := context.AfterFunc(ctx, func() {
			kp.PostSignal(linux.SIGKILL)
		})
		go func() {
			<-wp.Done()
			stop()
		}()
	}
	wp.RunAsync()
	return p, nil
}

func (r *Runtime) spawnWAZI(ctx context.Context, m *Module) (*Process, error) {
	zp, err := r.wazi.SpawnCompiled(m.compiled)
	if err != nil {
		return nil, err
	}
	p := &Process{zp: zp, zDone: make(chan struct{})}
	// Zephyr has no signals; cancellation and Kill are delivered by the
	// engine itself, polled at every thread's safepoints (spawned threads
	// inherit this Poll).
	zp.Exec.Poll = func(e *interp.Exec) {
		if p.zKilled.Load() {
			panic(&interp.Exit{Status: KilledStatus})
		}
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { p.zKilled.Store(true) })
		go func() {
			<-p.zDone
			stop()
		}()
	}
	go func() {
		defer close(p.zDone)
		p.zStatus, p.zErr = zp.Run()
	}()
	return p, nil
}

// Run is the synchronous convenience: Spawn followed by Wait on the same
// context.
func (r *Runtime) Run(ctx context.Context, m *Module, argv, env []string) (int32, error) {
	p, err := r.Spawn(ctx, m, argv, env)
	if err != nil {
		return -1, err
	}
	return p.Wait(ctx)
}

// PID returns the guest process id (1 for WAZI applications, whose board
// runs a single application image).
func (p *Process) PID() int32 {
	if p.wp != nil {
		return p.wp.KP.PID
	}
	return 1
}

// Wait blocks until the process finishes, returning its exit status and,
// for traps, the *Trap error (inspect Trap.Stack for the guest
// backtrace). If ctx is cancelled first, Wait returns ctx.Err() while
// the process keeps running — cancel the spawn context to also kill it.
func (p *Process) Wait(ctx context.Context) (int32, error) {
	if p.wp != nil {
		select {
		case <-p.wp.Done():
			return p.wp.Wait()
		case <-ctx.Done():
			return -1, ctx.Err()
		}
	}
	select {
	case <-p.zDone:
		return p.zStatus, p.zErr
	case <-ctx.Done():
		return -1, ctx.Err()
	}
}

// Kill posts a signal to the process (SIGKILL terminates it at the next
// safepoint). The WAZI host supports SIGKILL only — Zephyr has no
// signals, so the engine delivers the kill itself.
func (p *Process) Kill(sig int32) error {
	if p.wp != nil {
		if errno := p.wp.KP.PostSignal(sig); errno != 0 {
			return fmt.Errorf("gowali: kill: %v", errno)
		}
		return nil
	}
	if sig != linux.SIGKILL {
		return fmt.Errorf("gowali: the WAZI host supports SIGKILL only")
	}
	p.zKilled.Store(true)
	return nil
}

package gowali

// Facade tests: the module cache contract (CompileModule translates
// once; every spawn reuses the pre-decoded IR) and the benchmark backing
// it (cached re-spawn vs cold decode+translate+spawn of the same body).

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gowali/internal/wasm"
)

// heavyModule builds a module whose translation cost is non-trivial:
// nFuncs straight-line functions of ~4*nOps instructions each, plus a
// _start that exits immediately (spawn cost, not run cost, is what the
// cache affects).
func heavyModule(t testing.TB, nFuncs, nOps int) []byte {
	b := wasm.NewBuilder("heavy")
	b.Memory(1, 4, false)
	for i := 0; i < nFuncs; i++ {
		f := b.NewFunc("", nil, []wasm.ValType{wasm.I32})
		x := f.Local(wasm.I32)
		for j := 0; j < nOps; j++ {
			f.LocalGet(x).I32Const(int32(j)).Op(wasm.OpI32Add).LocalSet(x)
		}
		f.LocalGet(x)
		f.Finish()
	}
	b.NewFunc(StartExport, nil, nil).Finish()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return wasm.Encode(m)
}

// TestCompileModuleReusesIR proves the cache: two spawns of one compiled
// Module share the identical pre-decoded IR objects, and a separately
// compiled Module of the same bytes does not.
func TestCompileModuleReusesIR(t *testing.T) {
	raw := heavyModule(t, 4, 8)
	m, err := CompileModule(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p1, err := rt.Spawn(ctx, m, []string{"heavy"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rt.Spawn(ctx, m, []string{"heavy"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Process{p1, p2} {
		if status, err := p.Wait(ctx); err != nil || status != 0 {
			t.Fatalf("wait: status=%d err=%v", status, err)
		}
	}
	n := p1.wp.Inst.NumFuncs()
	if n != p2.wp.Inst.NumFuncs() || n == 0 {
		t.Fatalf("instances disagree on function count: %d vs %d", n, p2.wp.Inst.NumFuncs())
	}
	shared := 0
	for i := 0; i < n; i++ {
		c1, c2 := p1.wp.Inst.CodeRef(uint32(i)), p2.wp.Inst.CodeRef(uint32(i))
		if c1 != c2 {
			t.Fatalf("func[%d]: IR not shared across spawns of one Module", i)
		}
		if c1 != nil {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no local functions compared; test module is degenerate")
	}

	// Distinct compilations must NOT share IR (the cache is per-Module,
	// not global).
	m2, err := CompileModule(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p3, err := rt.Spawn(ctx, m2, []string{"heavy"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status, err := p3.Wait(ctx); err != nil || status != 0 {
		t.Fatalf("wait: status=%d err=%v", status, err)
	}
	for i := 0; i < n; i++ {
		if c := p1.wp.Inst.CodeRef(uint32(i)); c != nil && c == p3.wp.Inst.CodeRef(uint32(i)) {
			t.Fatalf("func[%d]: IR shared across distinct compilations", i)
		}
	}
}

// TestWithStdio checks the stdio plumbing: stdin feeds guest reads,
// stdout tees console output to the host writer, and a distinct stderr
// writer receives fd-2 writes that never touch the console.
func TestWithStdio(t *testing.T) {
	b := wasm.NewBuilder("stdio")
	sysRead := ImportWALISyscall(b, "read")
	sysWrite := ImportWALISyscall(b, "write")
	sysExit := ImportWALISyscall(b, "exit_group")
	b.Memory(1, 4, false)
	b.Data(1024, []byte("to-stdout\n"))
	b.Data(1100, []byte("to-stderr\n"))
	f := b.NewFunc(StartExport, nil, nil)
	f.I64Const(0).I64Const(2048).I64Const(16).Call(sysRead).Drop() // read(0, buf, 16)
	f.I64Const(1).I64Const(1024).I64Const(10).Call(sysWrite).Drop()
	f.I64Const(2).I64Const(1100).I64Const(10).Call(sysWrite).Drop()
	f.I64Const(1).I64Const(2048).I64Const(5).Call(sysWrite).Drop() // echo stdin
	f.I64Const(0).Call(sysExit).Drop()
	f.Finish()
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := CompileBuilt(built)
	if err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	rt, err := New(WithStdio(strings.NewReader("hello"), &out, &errw))
	if err != nil {
		t.Fatal(err)
	}
	status, runErr := rt.Run(context.Background(), m, []string{"stdio"}, nil)
	if runErr != nil || status != 0 {
		t.Fatalf("run: status=%d err=%v", status, runErr)
	}
	if got := out.String(); got != "to-stdout\nhello" {
		t.Fatalf("stdout tee = %q", got)
	}
	if got := errw.String(); got != "to-stderr\n" {
		t.Fatalf("stderr = %q", got)
	}
	if got := string(rt.ConsoleOutput()); strings.Contains(got, "to-stderr") {
		t.Fatalf("stderr leaked into the console: %q", got)
	}
}

// BenchmarkSpawnCachedModule measures re-spawning a compiled Module: the
// multi-tenant / fork-exec-storm path where the cached pre-decoded IR
// makes instantiation skip re-translation.
func BenchmarkSpawnCachedModule(b *testing.B) {
	raw := heavyModule(b, 64, 256)
	m, err := CompileModule(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	rt, err := New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if status, err := rt.Run(ctx, m, []string{"heavy"}, nil); err != nil || status != 0 {
			b.Fatalf("run: status=%d err=%v", status, err)
		}
	}
}

// BenchmarkSpawnColdModule is the baseline: decode + validate +
// translate + spawn the same body every time, as SpawnModule-per-request
// embeddings would.
func BenchmarkSpawnColdModule(b *testing.B) {
	raw := heavyModule(b, 64, 256)
	rt, err := New()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := CompileModule(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if status, err := rt.Run(ctx, m, []string{"heavy"}, nil); err != nil || status != 0 {
			b.Fatalf("run: status=%d err=%v", status, err)
		}
	}
}

// TestWithNetFlags proves the -net directive parser: accepted forms
// build a backend, malformed ones error, and conflicting directives
// are rejected.
func TestWithNetFlags(t *testing.T) {
	good := [][]string{
		nil,
		{"loop"},
		{"loopback"},
		{"host"},
		{"host=8080:127.0.0.1:18080"},
		{"host=8080:127.0.0.1:0", "host=9090:127.0.0.1:0", "allow=*"},
		{"allow=10.0.0.1:443"},
	}
	for _, specs := range good {
		if _, err := WithNetFlags(specs...); err != nil {
			t.Errorf("WithNetFlags(%v): %v", specs, err)
		}
	}
	bad := [][]string{
		{"tcp"},
		{"host=nope"},
		{"host=8080"},
		{"host=99999:127.0.0.1:1"},
		{"allow="},
		{"loop", "host=8080:127.0.0.1:1"},
	}
	for _, specs := range bad {
		if _, err := WithNetFlags(specs...); err == nil {
			t.Errorf("WithNetFlags(%v) accepted", specs)
		}
	}
}

// TestWithNetWAZIRejected: the WAZI board has no socket surface.
func TestWithNetWAZIRejected(t *testing.T) {
	if _, err := New(WithHost(WAZIHost()), WithNet(NewLoopbackNet())); err == nil {
		t.Fatal("WithNet over WAZI should fail")
	}
}

// TestSwitchAcrossRuntimes joins two independently built runtimes with
// a virtual switch and exchanges a message between their kernels.
func TestSwitchAcrossRuntimes(t *testing.T) {
	sw := NewSwitch()
	nodeA, err := sw.Node("10.9.0.1")
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := sw.Node("10.9.0.2")
	if err != nil {
		t.Fatal(err)
	}
	rtA, err := New(WithNet(nodeA))
	if err != nil {
		t.Fatal(err)
	}
	rtB, err := New(WithNet(nodeB))
	if err != nil {
		t.Fatal(err)
	}
	server := rtA.Kernel().NewProcess("srv", nil, nil)
	client := rtB.Kernel().NewProcess("cli", nil, nil)

	ls, errno := server.SocketSyscall(2, 1, 0) // AF_INET, SOCK_STREAM
	if errno != 0 {
		t.Fatalf("socket: %v", errno)
	}
	if errno := server.Bind(ls, NetAddr{Family: 2, Port: 7100}); errno != 0 {
		t.Fatalf("bind: %v", errno)
	}
	if errno := server.Listen(ls, 1); errno != 0 {
		t.Fatalf("listen: %v", errno)
	}
	cfd, errno := client.SocketSyscall(2, 1, 0)
	if errno != 0 {
		t.Fatalf("client socket: %v", errno)
	}
	if errno := client.Connect(cfd, NetAddr{Family: 2, Port: 7100, Addr: [4]byte{10, 9, 0, 1}}); errno != 0 {
		t.Fatalf("cross-runtime connect: %v", errno)
	}
	sfd, peer, errno := server.Accept(ls, 0)
	if errno != 0 {
		t.Fatalf("accept: %v", errno)
	}
	if peer.Addr != [4]byte{10, 9, 0, 2} {
		t.Fatalf("peer = %v, want 10.9.0.2", peer)
	}
	if _, errno := client.SendTo(cfd, []byte("cross"), 0, nil); errno != 0 {
		t.Fatalf("send: %v", errno)
	}
	buf := make([]byte, 8)
	n, _, errno := server.RecvFrom(sfd, buf, 0)
	if errno != 0 || string(buf[:n]) != "cross" {
		t.Fatalf("recv: %q %v", buf[:n], errno)
	}
}

package gowali

import (
	"context"
	"fmt"
	"io"
	"os"

	"gowali/internal/core"
	"gowali/internal/kernel/snap"
	"gowali/internal/linux"
)

// Snapshot / restore / fork: microsecond cold starts. A warmed guest is
// checkpointed into an Image — linear memory, interpreter resume state at
// a safepoint, kernel tables (descriptors by path+offset, cwd, signal
// dispositions, mmap layout) and overlay filesystem deltas — which
// restores into a fresh process in microseconds. Restored and forked
// children share the image's memory copy-on-write: only the pages a child
// writes are copied (and charged against its tenant budget), so one image
// fans out into a fleet for the cost of the dirtied delta.

// Image is a checkpointed guest: an immutable value that can be restored
// any number of times, forked into whole fleets, and serialized to disk
// with WriteTo / read back with ReadImage.
type Image struct {
	img *snap.Image
	w   *core.WALI // engine that can restore without re-compiling; nil for images read from disk
}

// Snapshot checkpoints a running process (package-level per the facade
// convention: the process carries its runtime). The guest is quiesced at
// its next interpreter safepoint — a blocking syscall in flight returns
// EINTR, exactly as a checkpointing CRIU run is guest-visible — captured,
// and resumed; the image is an independent copy. Only single-threaded
// guests with path-nameable descriptors (no pipes, sockets or epoll
// instances) are snapshottable.
func Snapshot(p *Process) (*Image, error) {
	if p.wp == nil {
		return nil, fmt.Errorf("gowali: Snapshot requires a WALI-backed host")
	}
	img, err := p.wp.W.Snapshot(p.wp)
	if err != nil {
		return nil, err
	}
	return &Image{img: img, w: p.wp.W}, nil
}

// RestoreOption configures one Restore call.
type RestoreOption func(*restoreCfg)

type restoreCfg struct {
	ctx context.Context
}

// RestoreWithContext ties the restored process's lifetime to ctx, exactly
// as Spawn does: cancellation delivers SIGKILL at the next safepoint.
func RestoreWithContext(ctx context.Context) RestoreOption {
	return func(c *restoreCfg) { c.ctx = ctx }
}

// Restore builds a fresh process from an image and resumes it from the
// captured safepoint on its own goroutine. The module is matched against
// the engine's content-hash cache (images restored on the engine that
// snapshotted them never re-compile); linear memory aliases the image
// copy-on-write. WALI-backed hosts only.
func (r *Runtime) Restore(img *Image, opts ...RestoreOption) (*Process, error) {
	if r.wali == nil {
		return nil, fmt.Errorf("gowali: Restore requires a WALI-backed host")
	}
	cfg := restoreCfg{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	wp, err := r.wali.Restore(img.img, r.wali.DefaultTenant)
	if err != nil {
		return nil, err
	}
	img.w = r.wali
	p := &Process{wp: wp}
	if cfg.ctx.Done() != nil {
		kp := wp.KP
		stop := context.AfterFunc(cfg.ctx, func() {
			kp.PostSignal(linux.SIGKILL)
		})
		go func() {
			<-wp.Done()
			stop()
		}()
	}
	wp.ResumeAsync()
	return p, nil
}

// Fork restores n processes from this image at once — the serverless
// fan-out primitive. All children share the image's memory pages
// copy-on-write; sibling writes never leak into each other or back into
// the image. The image must have passed through Snapshot or Restore on a
// runtime first (a freshly deserialized image has no engine yet).
func (img *Image) Fork(n int) ([]*Process, error) {
	if img.w == nil {
		return nil, fmt.Errorf("gowali: Fork: image is not bound to a runtime yet; Restore it once first")
	}
	procs := make([]*Process, 0, n)
	for i := 0; i < n; i++ {
		wp, err := img.w.Restore(img.img, img.w.DefaultTenant)
		if err != nil {
			return procs, err
		}
		p := &Process{wp: wp}
		wp.ResumeAsync()
		procs = append(procs, p)
	}
	return procs, nil
}

// WriteTo serializes the image in the versioned binary format
// (checksummed; refused on version or checksum mismatch at read time).
func (img *Image) WriteTo(w io.Writer) (int64, error) { return img.img.WriteTo(w) }

// ReadImage deserializes an image written by WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	img := &snap.Image{}
	if _, err := img.ReadFrom(r); err != nil {
		return nil, err
	}
	return &Image{img: img}, nil
}

// WriteImageFile serializes the image to a file (the wali-run -snapshot
// flag's backing helper).
func (img *Image) WriteImageFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := img.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadImageFile reads an image file written by WriteImageFile.
func ReadImageFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadImage(f)
}

// DirtyPages reports how many 64 KiB pages a restored process has
// privatized away from its image so far (its true memory footprint; the
// tenant budget charges exactly these).
func (p *Process) DirtyPages() int {
	if p.wp == nil {
		return 0
	}
	return p.wp.Inst.Mem.DirtyPages()
}

package gowali

// Mount-table facade tests: a guest spawned through the public API
// reads and writes real host files through WithMount, read-only mounts
// surface EROFS at the syscall boundary, and overlays keep the lower
// layer pristine under guest writes.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"gowali/internal/linux"
	"gowali/internal/wasm"
)

// copyModule builds a guest that copies src → dst with raw WALI
// syscalls: open(src, O_RDONLY); n = pread64(fd, buf, 256, 0);
// open(dst, O_CREAT|O_WRONLY|O_TRUNC, 0644); write(fd2, buf, n);
// exit_group(0).
func copyModule(t testing.TB, src, dst string) *Module {
	t.Helper()
	b := wasm.NewBuilder("copy")
	sysOpen := ImportWALISyscall(b, "open")
	sysPread := ImportWALISyscall(b, "pread64")
	sysWrite := ImportWALISyscall(b, "write")
	sysClose := ImportWALISyscall(b, "close")
	sysExit := ImportWALISyscall(b, "exit_group")
	b.Memory(1, 4, false)
	const (
		srcPtr = 1024
		dstPtr = 1280
		ioBuf  = 2048
	)
	b.Data(srcPtr, append([]byte(src), 0))
	b.Data(dstPtr, append([]byte(dst), 0))
	f := b.NewFunc(StartExport, nil, nil)
	fd := f.Local(wasm.I64)
	n := f.Local(wasm.I64)
	f.I64Const(srcPtr).I64Const(int64(linux.O_RDONLY)).I64Const(0).Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(ioBuf).I64Const(256).I64Const(0).Call(sysPread).LocalSet(n)
	f.LocalGet(fd).Call(sysClose).Drop()
	f.I64Const(dstPtr).I64Const(int64(linux.O_CREAT | linux.O_WRONLY | linux.O_TRUNC)).I64Const(0o644)
	f.Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(ioBuf).LocalGet(n).Call(sysWrite).Drop()
	f.LocalGet(fd).Call(sysClose).Drop()
	f.I64Const(0).Call(sysExit).Drop()
	f.Finish()
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := CompileBuilt(built)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// openStatusModule builds a guest that exits with -open(path, flags)
// on failure (so the errno becomes the exit status) and 0 on success.
func openStatusModule(t testing.TB, path string, flags int32) *Module {
	t.Helper()
	b := wasm.NewBuilder("openstatus")
	sysOpen := ImportWALISyscall(b, "open")
	sysExit := ImportWALISyscall(b, "exit_group")
	b.Memory(1, 4, false)
	const pathPtr = 1024
	b.Data(pathPtr, append([]byte(path), 0))
	f := b.NewFunc(StartExport, nil, nil)
	ret := f.Local(wasm.I64)
	f.I64Const(pathPtr).I64Const(int64(flags)).I64Const(0o644).Call(sysOpen).LocalSet(ret)
	f.Block()
	f.LocalGet(ret).I64Const(0).Op(wasm.OpI64LtS).Op(wasm.OpI32Eqz).BrIf(0)
	f.I64Const(0).LocalGet(ret).Op(wasm.OpI64Sub).Call(sysExit).Drop()
	f.End()
	f.I64Const(0).Call(sysExit).Drop()
	f.Finish()
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := CompileBuilt(built)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWithMountEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "input.txt"), []byte("mounted hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	host, err := NewHostFS(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(WithMount("/data", host))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mi := range rt.Mounts() {
		if mi.Path == "/data" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mount table missing /data: %+v", rt.Mounts())
	}
	status, err := rt.Run(context.Background(), copyModule(t, "/data/input.txt", "/data/out.txt"), []string{"copy"}, nil)
	if err != nil || status != 0 {
		t.Fatalf("guest: status=%d err=%v", status, err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatalf("host missing guest output: %v", err)
	}
	if string(got) != "mounted hello" {
		t.Fatalf("guest copied %q", got)
	}
}

func TestWithMountReadOnlyEROFS(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "ro.txt"), []byte("x"), 0o644)
	host, err := NewHostFS(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(WithMount("/ro", host, MountReadOnly()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Opening an existing file for write on a read-only mount: EROFS.
	status, err := rt.Run(ctx, openStatusModule(t, "/ro/ro.txt", linux.O_WRONLY), []string{"w"}, nil)
	if err != nil || status != int32(linux.EROFS) {
		t.Fatalf("O_WRONLY on ro mount: status=%d err=%v, want %d (EROFS)", status, err, linux.EROFS)
	}
	// Creating a new file: EROFS too.
	status, err = rt.Run(ctx, openStatusModule(t, "/ro/new.txt", linux.O_CREAT|linux.O_WRONLY), []string{"c"}, nil)
	if err != nil || status != int32(linux.EROFS) {
		t.Fatalf("O_CREAT on ro mount: status=%d err=%v, want EROFS", status, err)
	}
	// Reading still works.
	status, err = rt.Run(ctx, openStatusModule(t, "/ro/ro.txt", linux.O_RDONLY), []string{"r"}, nil)
	if err != nil || status != 0 {
		t.Fatalf("O_RDONLY on ro mount: status=%d err=%v", status, err)
	}
}

func TestWithMountOverlayKeepsLowerPristine(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "input.txt"), []byte("image data"), 0o644)
	lower, err := NewHostFS(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(WithMount("/app", NewOverlayFS(lower)))
	if err != nil {
		t.Fatal(err)
	}
	// The guest copies a lower file to a new path *and* overwrites the
	// original — both writes land in the overlay's upper layer.
	status, err := rt.Run(context.Background(), copyModule(t, "/app/input.txt", "/app/copy.txt"), []string{"c"}, nil)
	if err != nil || status != 0 {
		t.Fatalf("copy: status=%d err=%v", status, err)
	}
	status, err = rt.Run(context.Background(), copyModule(t, "/app/copy.txt", "/app/input.txt"), []string{"c2"}, nil)
	if err != nil || status != 0 {
		t.Fatalf("overwrite: status=%d err=%v", status, err)
	}
	// Host image untouched; no copy.txt appeared on the host.
	got, _ := os.ReadFile(filepath.Join(dir, "input.txt"))
	if string(got) != "image data" {
		t.Fatalf("lower image mutated: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "copy.txt")); err == nil {
		t.Fatal("overlay write leaked into the read-only lower layer")
	}
}

func TestRuntimeMountUnmountLive(t *testing.T) {
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Mount("/scratch", NewMemFS()); err != nil {
		t.Fatal(err)
	}
	k := rt.Kernel()
	if errno := k.FS.WriteFile("/scratch/s.txt", []byte("s"), 0o644); errno != 0 {
		t.Fatalf("write on live mount: %v", errno)
	}
	if err := rt.Unmount("/scratch"); err != nil {
		t.Fatal(err)
	}
	if r, _ := k.FS.Walk("/", "/scratch/s.txt", true); r.Node != nil {
		t.Fatal("unmounted scratch content still visible")
	}
	if err := rt.Unmount("/scratch"); err == nil {
		t.Fatal("double unmount succeeded")
	}
}

func TestWithMountSpecParsing(t *testing.T) {
	dir := t.TempDir()
	opt, err := WithMountSpec(dir + "=/data:ro")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	var mi *MountInfo
	for i := range rt.Mounts() {
		if rt.Mounts()[i].Path == "/data" {
			m := rt.Mounts()[i]
			mi = &m
		}
	}
	if mi == nil || !mi.ReadOnly {
		t.Fatalf("spec mount wrong: %+v", rt.Mounts())
	}
	for _, bad := range []string{"", "nodir", "=/g", "h=", "h=relative"} {
		if _, err := WithMountSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestWithMountRejectedOnWAZI(t *testing.T) {
	dir := t.TempDir()
	host, err := NewHostFS(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithHost(WAZIHost()), WithMount("/d", host)); err == nil {
		t.Fatal("WithMount on WAZI host accepted")
	}
}

// syscall-prof emits the scoping-study data of §2: the Fig. 2 syscall
// profile across the application suite and the Fig. 3 ISA-commonality
// analysis.
//
//	syscall-prof -fig2
//	syscall-prof -fig3
//	syscall-prof -lat
//
// -lat runs the suite with the obs metrics plane attached and prints
// the per-syscall handler-latency distribution (p50/p90/p99/p999 from
// log-bucketed histograms), sorted by call count.
package main

import (
	"flag"
	"fmt"
	"os"

	"gowali/bench"
)

func main() {
	fig2 := flag.Bool("fig2", false, "syscall profile across applications (Fig. 2)")
	fig3 := flag.Bool("fig3", false, "syscall commonality across ISAs (Fig. 3)")
	lat := flag.Bool("lat", false, "per-syscall handler latency histograms across the suite")
	flag.Parse()
	if !*fig2 && !*fig3 && !*lat {
		*fig2, *fig3 = true, true
	}
	if *fig2 {
		fmt.Println("== Fig. 2: log-normalized syscall profile ==")
		profiles := bench.Fig2Profiles()
		fmt.Print(bench.FormatFig2(profiles))
		var unique int
		seen := map[string]bool{}
		for _, p := range profiles {
			for s := range p.Counts {
				if !seen[s] {
					seen[s] = true
					unique++
				}
			}
		}
		fmt.Printf("\nunion of invoked syscalls across apps: %d\n\n", unique)
	}
	if *fig3 {
		fmt.Println("== Fig. 3: Linux syscall similarity across ISAs ==")
		fmt.Print(bench.FormatFig3())
	}
	if *lat {
		fmt.Println("== Per-syscall handler latency (ns) ==")
		fmt.Print(bench.FormatSyscallLatency(bench.SyscallLatencyProfile()))
	}
	os.Exit(0)
}

// wali-run executes WebAssembly binaries over WALI — the iwasm analogue
// of the paper's artifact. It runs either a .wasm file from the host
// filesystem or one of the built-in ported applications:
//
//	wali-run -app lua -scale 50000
//	wali-run -app bash -verbose
//	wali-run program.wasm arg1 arg2
//
// -verbose mirrors WALI_VERBOSE: every dynamically executed syscall is
// printed (experiment E1).
package main

import (
	"flag"
	"fmt"
	"os"

	"gowali/internal/apps"
	"gowali/internal/core"
	"gowali/internal/trace"
	"gowali/internal/wasm"
)

func main() {
	appName := flag.String("app", "", "run a built-in ported app (lua, bash, sqlite, memcached, paho-mqtt)")
	scale := flag.Int("scale", 1000, "workload scale for built-in apps")
	verbose := flag.Bool("verbose", false, "print every executed syscall (WALI_VERBOSE)")
	stats := flag.Bool("stats", false, "print syscall statistics after the run")
	flag.Parse()

	w := core.New()
	col := trace.NewCollector()
	if *verbose {
		col.Verbose = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	col.Attach(w)

	var status int32
	var err error
	switch {
	case *appName != "":
		var a apps.App
		a, err = apps.ByName(*appName)
		if err == nil {
			_, status, err = apps.RunOn(w, a, *scale)
		}
	case flag.NArg() > 0:
		status, err = runFile(w, flag.Arg(0), flag.Args())
	default:
		fmt.Fprintln(os.Stderr, "usage: wali-run [-app name | file.wasm] [args...]")
		os.Exit(2)
	}
	os.Stdout.Write(w.Console().Output())
	if err != nil {
		fmt.Fprintf(os.Stderr, "wali-run: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		d, n := col.Total()
		fmt.Fprintf(os.Stderr, "syscalls: %d calls, %d distinct, %s in handlers\n", n, col.Unique(), d)
		for name, c := range col.Counts() {
			fmt.Fprintf(os.Stderr, "  %-20s %d\n", name, c)
		}
	}
	os.Exit(int(status))
}

func runFile(w *core.WALI, path string, argv []string) (int32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 127, err
	}
	m, err := wasm.Decode(raw)
	if err != nil {
		return 127, fmt.Errorf("decode %s: %w", path, err)
	}
	if err := wasm.Validate(m); err != nil {
		return 127, fmt.Errorf("validate %s: %w", path, err)
	}
	p, err := w.SpawnModule(m, path, argv, os.Environ())
	if err != nil {
		return 127, err
	}
	status, runErr := p.Run()
	w.WaitAll()
	return status, runErr
}

// wali-run executes WebAssembly binaries over WALI — the iwasm analogue
// of the paper's artifact. It runs either a .wasm file from the host
// filesystem or one of the built-in ported applications:
//
//	wali-run -app lua -scale 50000
//	wali-run -app bash -verbose
//	wali-run program.wasm arg1 arg2
//	wali-run -dir /srv/data=/data -dir /srv/image=/app:ro program.wasm
//	wali-run -net host=8080:127.0.0.1:18080 server.wasm
//	wali-run -net subnet=10.9.1.0/24 -net bridge=0.0.0.0:19077 server.wasm
//	wali-run -net subnet=10.9.2.0/24 -net join=hostA:19077 client.wasm
//
// -dir mounts a host directory into the guest filesystem (repeatable;
// a ":ro" suffix makes the mount read-only). -net selects the guest
// network stack (repeatable directives): "host=PORT:HOSTADDR" maps a
// guest listener port to a real host listen address, "allow=PATTERN"
// permits outbound dials, plain "loop" is the default in-kernel
// loopback. The fabric directives join this process to a distributed
// switch fabric trunked over real TCP: "subnet=CIDR" declares the
// local address block (the guest gets its first free address;
// repeatable), "node=IP" pins the guest address instead,
// "bridge=HOST:PORT" listens for other processes' trunks, and
// "join=HOST:PORT" dials into a fabric (both repeatable) — guests then
// dial guests in other processes or on other hosts by fabric address.
// -verbose mirrors WALI_VERBOSE: every dynamically executed
// syscall is printed (experiment E1). The observability flags:
// -strace decodes each syscall (name, arguments with path pointers
// dereferenced, return value or errno, latency) to stderr; -trace-out
// FILE records runtime events (syscalls, scheduler transitions, trunk
// frames, snapshot/CoW activity) and writes a Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) on exit; -metrics ADDR serves
// Prometheus text at /metrics (and JSON at /metrics.json) during the
// run — a bare ":PORT" binds loopback only. The guest's exit status
// becomes the host process exit status; guest traps print the Wasm
// backtrace.
//
//	wali-run -strace -app lua -scale 100
//	wali-run -trace-out trace.json -app lua
//	wali-run -metrics :9090 server.wasm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gowali"
)

// dirFlags collects repeatable -dir hostdir=/guestpath[:ro] mounts.
type dirFlags []string

func (d *dirFlags) String() string { return strings.Join(*d, ",") }
func (d *dirFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	appName := flag.String("app", "", "run a built-in ported app (lua, bash, sqlite, memcached, paho-mqtt)")
	scale := flag.Int("scale", 1000, "workload scale for built-in apps")
	verbose := flag.Bool("verbose", false, "print every executed syscall (WALI_VERBOSE)")
	stats := flag.Bool("stats", false, "print syscall statistics after the run")
	var dirs dirFlags
	flag.Var(&dirs, "dir", "mount a host directory: hostdir=/guestpath[:ro] (repeatable)")
	var nets dirFlags
	flag.Var(&nets, "net", "network stack directive: loop | host=PORT:HOSTADDR | allow=PATTERN (repeatable)")
	strace := flag.Bool("strace", false, "decode every syscall to stderr: name, arguments, return/errno, latency")
	traceOut := flag.String("trace-out", "", "record runtime events and write a Chrome/Perfetto trace JSON to this file on exit")
	metricsAddr := flag.String("metrics", "", "serve Prometheus metrics on this address for the life of the run (\":PORT\" binds loopback only)")
	snapFile := flag.String("snapshot", "", "checkpoint the warmed guest to this image file, then let it finish")
	snapDelay := flag.Duration("snapshot-delay", 50*time.Millisecond, "how long to warm the guest before -snapshot checkpoints it")
	restoreFile := flag.String("restore", "", "restore a guest from an image file instead of running a .wasm binary")
	tierName := flag.String("tier", "fused", "execution engine: fused | ir | wire")
	flag.Parse()

	tier, err := gowali.ParseTier(*tierName)
	if err != nil {
		fatal(err)
	}

	col := gowali.NewCollector()
	if *verbose {
		col.Verbose = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	opts := []gowali.Option{gowali.WithSyscallHook(col.Observe), gowali.WithExecTier(tier)}
	if *strace {
		opts = append(opts, gowali.WithStrace(os.Stderr))
	}
	var tracer *gowali.Tracer
	if *traceOut != "" {
		tracer = gowali.NewTracer()
		tracer.SetEnabled(true)
		opts = append(opts, gowali.WithTracer(tracer))
	}
	if *metricsAddr != "" {
		opts = append(opts, gowali.WithMetrics(gowali.NewMetrics()))
	}
	for _, spec := range dirs {
		opt, err := gowali.WithMountSpec(spec)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, opt)
	}
	netOpt, err := gowali.WithNetFlags(nets...)
	if err != nil {
		fatal(err)
	}
	opts = append(opts, netOpt)
	rt, err := gowali.New(opts...)
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		bound, err := rt.ServeMetrics(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wali-run: metrics on http://%s/metrics\n", bound)
	}

	var status int32
	switch {
	case *restoreFile != "":
		status, err = restoreImage(rt, *restoreFile)
	case *appName != "":
		status, err = rt.RunApp(*appName, *scale)
	case flag.NArg() > 0 && *snapFile != "":
		status, err = runAndSnapshot(rt, flag.Arg(0), flag.Args(), *snapFile, *snapDelay)
	case flag.NArg() > 0:
		status, err = runFile(rt, flag.Arg(0), flag.Args())
	default:
		fmt.Fprintln(os.Stderr, "usage: wali-run [-app name | file.wasm] [args...]")
		os.Exit(2)
	}
	os.Stdout.Write(rt.ConsoleOutput())
	if err != nil {
		fmt.Fprintf(os.Stderr, "wali-run: %v\n", err)
		var trap *gowali.Trap
		if errors.As(err, &trap) {
			for _, fr := range trap.Stack {
				fmt.Fprintf(os.Stderr, "  at %s\n", fr)
			}
		}
		if status <= 0 {
			status = 1
		}
	}
	if *stats {
		d, n := col.Total()
		fmt.Fprintf(os.Stderr, "syscalls: %d calls, %d distinct, %s in handlers\n", n, col.Unique(), d)
		for name, c := range col.Counts() {
			fmt.Fprintf(os.Stderr, "  %-20s %d\n", name, c)
		}
	}
	if tracer != nil {
		if err := writeTrace(tracer, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "wali-run: writing trace: %v\n", err)
			if status == 0 {
				status = 1
			}
		}
	}
	// Propagate the guest exit status as the host process exit code.
	os.Exit(int(status))
}

func runFile(rt *gowali.Runtime, path string, argv []string) (int32, error) {
	m, err := gowali.CompileFile(path)
	if err != nil {
		return 127, err
	}
	status, runErr := rt.Run(context.Background(), m, argv, os.Environ())
	rt.WaitAll()
	return status, runErr
}

// runAndSnapshot spawns the guest, checkpoints it once warmed, writes the
// image, and lets the guest run to completion.
func runAndSnapshot(rt *gowali.Runtime, path string, argv []string, imgPath string, delay time.Duration) (int32, error) {
	m, err := gowali.CompileFile(path)
	if err != nil {
		return 127, err
	}
	p, err := rt.Spawn(context.Background(), m, argv, os.Environ())
	if err != nil {
		return 127, err
	}
	time.Sleep(delay)
	img, snapErr := gowali.Snapshot(p)
	if snapErr == nil {
		snapErr = img.WriteImageFile(imgPath)
	}
	status, runErr := p.Wait(context.Background())
	rt.WaitAll()
	if runErr == nil {
		runErr = snapErr
	}
	return status, runErr
}

// restoreImage resumes a checkpointed guest from an on-disk image.
func restoreImage(rt *gowali.Runtime, imgPath string) (int32, error) {
	img, err := gowali.ReadImageFile(imgPath)
	if err != nil {
		return 127, err
	}
	p, err := rt.Restore(img)
	if err != nil {
		return 127, err
	}
	status, runErr := p.Wait(context.Background())
	rt.WaitAll()
	return status, runErr
}

// writeTrace flushes the recorded events as Perfetto-loadable JSON.
func writeTrace(tr *gowali.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wali-run: %v\n", err)
	os.Exit(1)
}

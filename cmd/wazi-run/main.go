// wazi-run executes a module over WAZI on the simulated Zephyr board —
// the §5.1 deployment (a Lua-like toolchain on a Nucleo-F767ZI running
// Zephyr). With no arguments it runs the built-in demo workload. The
// guest's exit status becomes the host process exit status; traps print
// the Wasm backtrace.
//
// -dir hostdir=/guestprefix[:ro] maps a host directory into the board:
// Zephyr's flash filesystem is flat (names are whole paths, like
// littlefs), so the files are preloaded as "/guestprefix/<relative>"
// before the run and — unless the mapping is :ro — written back to the
// host directory afterwards. Repeatable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"gowali"
	"gowali/wasm"
)

// dirFlags collects repeatable -dir hostdir=/guestprefix[:ro] mappings.
type dirFlags []string

func (d *dirFlags) String() string { return strings.Join(*d, ",") }
func (d *dirFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

type boardDir struct {
	host, guest string
	ro          bool
}

func parseBoardDir(spec string) (boardDir, error) {
	s, ro := strings.CutSuffix(spec, ":ro")
	host, guest, ok := strings.Cut(s, "=")
	if !ok || host == "" || guest == "" || !strings.HasPrefix(guest, "/") {
		return boardDir{}, fmt.Errorf("bad -dir spec %q (want hostdir=/guestprefix[:ro])", spec)
	}
	return boardDir{host: host, guest: strings.TrimSuffix(guest, "/"), ro: ro}, nil
}

// preload copies every regular file under d.host into the board flash.
func preload(rt *gowali.Runtime, d boardDir) error {
	return filepath.WalkDir(d.host, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || !ent.Type().IsRegular() {
			return err
		}
		rel, err := filepath.Rel(d.host, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return rt.InstallBoardFile(d.guest+"/"+filepath.ToSlash(rel), data)
	})
}

// writeback syncs flash files under d.guest back to d.host.
func writeback(rt *gowali.Runtime, d boardDir) error {
	for name, data := range rt.BoardFiles() {
		rel, ok := strings.CutPrefix(name, d.guest+"/")
		if !ok || rel == "" {
			continue
		}
		hostPath := filepath.Join(d.host, filepath.FromSlash(rel))
		if prev, err := os.ReadFile(hostPath); err == nil && string(prev) == string(data) {
			continue // unchanged
		}
		if err := os.MkdirAll(filepath.Dir(hostPath), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(hostPath, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	iters := flag.Int("iters", 50000, "demo interpreter iterations")
	var dirs dirFlags
	flag.Var(&dirs, "dir", "map a host directory into the board flash: hostdir=/guestprefix[:ro] (repeatable)")
	flag.Parse()

	var mappings []boardDir
	for _, spec := range dirs {
		d, err := parseBoardDir(spec)
		if err != nil {
			fatal(err)
		}
		mappings = append(mappings, d)
	}

	var m *gowali.Module
	var err error
	if flag.NArg() > 0 {
		m, err = gowali.CompileFile(flag.Arg(0))
	} else {
		m, err = gowali.CompileBuilt(demoModule(*iters))
	}
	if err != nil {
		fatal(err)
	}

	rt, err := gowali.New(gowali.WithHost(gowali.WAZIHost()))
	if err != nil {
		fatal(err)
	}
	for _, d := range mappings {
		if err := preload(rt, d); err != nil {
			fatal(fmt.Errorf("preload %s: %w", d.host, err))
		}
	}
	fmt.Fprintf(os.Stderr, "board: %s\n", rt.Board())
	fmt.Fprintf(os.Stderr, "wazi: %.0f%% of bindings auto-generated from the syscall encoding\n",
		100*gowali.WAZIPassthroughRatio())
	status, runErr := rt.Run(context.Background(), m, nil, nil)
	os.Stdout.Write(rt.ConsoleOutput())
	for _, d := range mappings {
		if d.ro {
			continue
		}
		if err := writeback(rt, d); err != nil {
			fmt.Fprintf(os.Stderr, "wazi-run: writeback %s: %v\n", d.host, err)
			if status == 0 {
				status = 1
			}
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "wazi-run: %v\n", runErr)
		var trap *gowali.Trap
		if errors.As(runErr, &trap) {
			for _, fr := range trap.Stack {
				fmt.Fprintf(os.Stderr, "  at %s\n", fr)
			}
		}
		if status <= 0 {
			status = 1
		}
	}
	// Propagate the guest exit status as the host process exit code.
	os.Exit(int(status))
}

// demoModule is the lua-like interpreter kernel targeted at WAZI: console
// output, uptime reads, a compute loop and the flash filesystem.
func demoModule(iters int) *wasm.Module {
	b := wasm.NewBuilder("zephyr-lua")
	sysOut := gowali.ImportWAZISyscall(b, "console_out")
	sysUp := gowali.ImportWAZISyscall(b, "k_uptime_get")
	sysOpen := gowali.ImportWAZISyscall(b, "fs_open")
	sysWrite := gowali.ImportWAZISyscall(b, "fs_write")
	sysClose := gowali.ImportWAZISyscall(b, "fs_close")
	b.Memory(2, 8, false)
	b.Data(256, []byte("lua-on-zephyr: ok\n"))
	b.Data(300, []byte("result.bin\x00"))

	f := b.NewFunc("_start", nil, nil)
	x := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	fd := f.Local(wasm.I64)
	f.Call(sysUp).Drop()
	// Compute loop.
	f.I32Const(-1640531527).LocalSet(x)
	f.I32Const(0).LocalSet(i)
	f.Block()
	f.Loop()
	f.LocalGet(i).I32Const(int32(iters)).Op(wasm.OpI32GeU).BrIf(1)
	f.LocalGet(x).LocalGet(x).I32Const(13).Op(wasm.OpI32Shl).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(x).LocalGet(x).I32Const(17).Op(wasm.OpI32ShrU).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(x).LocalGet(x).I32Const(5).Op(wasm.OpI32Shl).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	// Persist the result to flash.
	f.I32Const(512).LocalGet(x).Store(wasm.OpI32Store, 0)
	f.I64Const(300).I64Const(11).I64Const(1).Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(512).I64Const(4).Call(sysWrite).Drop()
	f.LocalGet(fd).Call(sysClose).Drop()
	f.I64Const(256).I64Const(18).Call(sysOut).Drop()
	f.Call(sysUp).Drop()
	f.Finish()
	m, err := b.Build()
	if err != nil {
		fatal(err)
	}
	return m
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wazi-run: %v\n", err)
	os.Exit(1)
}

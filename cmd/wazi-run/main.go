// wazi-run executes a module over WAZI on the simulated Zephyr board —
// the §5.1 deployment (a Lua-like toolchain on a Nucleo-F767ZI running
// Zephyr). With no arguments it runs the built-in demo workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"gowali/internal/wasm"
	"gowali/internal/wazi"
	"gowali/internal/zephyr"
)

func main() {
	iters := flag.Int("iters", 50000, "demo interpreter iterations")
	flag.Parse()

	var m *wasm.Module
	if flag.NArg() > 0 {
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		var derr error
		m, derr = wasm.Decode(raw)
		if derr != nil {
			fatal(derr)
		}
	} else {
		m = demoModule(*iters)
	}

	w := wazi.New()
	p, err := w.Spawn(m)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "board: %s\n", w.Z)
	fmt.Fprintf(os.Stderr, "wazi: %.0f%% of bindings auto-generated from the syscall encoding\n",
		100*wazi.PassthroughRatio())
	if err := p.Run(); err != nil {
		fatal(err)
	}
	os.Stdout.Write(w.Z.ConsoleOutput())
	fmt.Fprintf(os.Stderr, "board after run: %s\n", w.Z)
}

// demoModule is the lua-like interpreter kernel targeted at WAZI: console
// output, uptime reads, a compute loop and the flash filesystem.
func demoModule(iters int) *wasm.Module {
	b := wasm.NewBuilder("zephyr-lua")
	sysOut := wazi.ImportSyscall(b, "console_out")
	sysUp := wazi.ImportSyscall(b, "k_uptime_get")
	sysOpen := wazi.ImportSyscall(b, "fs_open")
	sysWrite := wazi.ImportSyscall(b, "fs_write")
	sysClose := wazi.ImportSyscall(b, "fs_close")
	b.Memory(2, 8, false)
	b.Data(256, []byte("lua-on-zephyr: ok\n"))
	b.Data(300, []byte("result.bin\x00"))

	f := b.NewFunc("_start", nil, nil)
	x := f.Local(wasm.I32)
	i := f.Local(wasm.I32)
	fd := f.Local(wasm.I64)
	f.Call(sysUp).Drop()
	// Compute loop.
	f.I32Const(-1640531527).LocalSet(x)
	f.I32Const(0).LocalSet(i)
	f.Block()
	f.Loop()
	f.LocalGet(i).I32Const(int32(iters)).Op(wasm.OpI32GeU).BrIf(1)
	f.LocalGet(x).LocalGet(x).I32Const(13).Op(wasm.OpI32Shl).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(x).LocalGet(x).I32Const(17).Op(wasm.OpI32ShrU).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(x).LocalGet(x).I32Const(5).Op(wasm.OpI32Shl).Op(wasm.OpI32Xor).LocalSet(x)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	// Persist the result to flash.
	f.I32Const(512).LocalGet(x).Store(wasm.OpI32Store, 0)
	f.I64Const(300).I64Const(11).I64Const(1).Call(sysOpen).LocalSet(fd)
	f.LocalGet(fd).I64Const(512).I64Const(4).Call(sysWrite).Drop()
	f.LocalGet(fd).Call(sysClose).Drop()
	f.I64Const(256).I64Const(18).Call(sysOut).Drop()
	f.Call(sysUp).Drop()
	f.Finish()
	m, err := b.Build()
	if err != nil {
		fatal(err)
	}
	return m
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wazi-run: %v\n", err)
	os.Exit(1)
}

var _ = zephyr.SRAMBudget // document the simulated board constraint

// benchvirt regenerates the evaluation artifacts of §4: Table 1 (porting
// matrix), Table 2 (syscall overheads), Table 3 (signal polling), Fig. 7
// (runtime breakdown) and Fig. 8 (virtualization comparison vs Docker-sim
// and QEMU-sim) — plus Fig. 9, this repo's scale-out extension (aggregate
// syscall throughput vs concurrent guest count).
//
//	benchvirt -all
//	benchvirt -table2 -iters 5000
//	benchvirt -fig8time -scales 10000,50000,100000
//	benchvirt -scaleout -scaleout-iters 500 -guests 1,2,4,8
//	benchvirt -scaleout -scaleout-dir /tmp/work -scaleout-ro /srv/image
//	benchvirt -fsmicro -fsmicro-dir /tmp/probe
//	benchvirt -fleet -fleet-guests 200 -fleet-gomax 1,2,4,8
//	benchvirt -opstats -opstats-app lua -opstats-scale 100000
//	benchvirt -traffic -traffic-nodes 4 -traffic-bytes 4194304
//	benchvirt -tier ir -fig8time
//	benchvirt -json -scaleout -netecho -snap -traffic
//
// -tier selects the execution engine (fused | ir | wire) for every
// harness. -opstats prints the dynamic opcode/sequence frequency profile
// that selects superinstruction candidates, plus a per-tier ns/instr and
// fusion-coverage table. -traffic drives permutation/incast/all-to-all
// flows between guest fleets on a distributed switch fabric (one switch
// per node, trunked over localhost TCP) plus a slow-receiver
// backpressure probe. -json additionally writes the machine-readable
// results of the run to BENCH_<date>.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gowali/bench"
)

func main() {
	all := flag.Bool("all", false, "run everything")
	t1 := flag.Bool("table1", false, "porting matrix (Table 1)")
	t2 := flag.Bool("table2", false, "syscall overheads (Table 2)")
	t3 := flag.Bool("table3", false, "safepoint polling cost (Table 3)")
	f7 := flag.Bool("fig7", false, "runtime breakdown (Fig. 7)")
	f8t := flag.Bool("fig8time", false, "execution time comparison (Fig. 8b-d)")
	f8m := flag.Bool("fig8mem", false, "peak memory comparison (Fig. 8a)")
	f9 := flag.Bool("scaleout", false, "multi-guest syscall throughput vs concurrency (Fig. 9)")
	fsm := flag.Bool("fsmicro", false, "memfs vs hostfs vs overlayfs open/pread64 micro-benchmark")
	ne := flag.Bool("netecho", false, "socket echo RTT/throughput across net backends (loopback, switch, hostnet)")
	fleet := flag.Bool("fleet", false, "multicore scheduler fleet: spinner/syscall/poll guest mix across GOMAXPROCS values")
	snap := flag.Bool("snap", false, "snapshot/restore: checkpoint a warmed guest, restore latency + CoW fork fan-out")
	opstats := flag.Bool("opstats", false, "dynamic opcode/sequence frequency profile + per-tier cost table")
	traffic := flag.Bool("traffic", false, "distributed-fabric traffic patterns (permutation/incast/all-to-all) + backpressure probe")
	trafficNodes := flag.Int("traffic-nodes", 4, "fabric size for -traffic (switches, one guest kernel each)")
	trafficBytes := flag.Int("traffic-bytes", 4<<20, "per-flow transfer size for -traffic")
	trafficPatterns := flag.String("traffic-patterns", "", "comma-separated -traffic patterns (default: permutation,incast,alltoall)")
	opstatsApp := flag.String("opstats-app", "lua", "built-in app to profile for -opstats")
	opstatsScale := flag.Int("opstats-scale", 100000, "workload scale for -opstats")
	tierName := flag.String("tier", "fused", "execution engine for all harnesses: fused | ir | wire")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to BENCH_<date>.json")
	jsonDir := flag.String("json-dir", "", "directory for the -json report (default: current directory)")
	iters := flag.Int("iters", 2000, "iterations for Table 2")
	scaleIters := flag.Int("scaleout-iters", 200, "per-guest loop iterations for -scaleout")
	guestList := flag.String("guests", "", "comma-separated guest counts for -scaleout (default: powers of two through 4xNumCPU)")
	scaleoutDir := flag.String("scaleout-dir", "", "host dir mounted read-write at /data for -scaleout guest working files (default: memfs /tmp)")
	scaleoutRO := flag.String("scaleout-ro", "", "host dir mounted read-only at /img; -scaleout guests share its image file each iteration")
	fsmIters := flag.Int("fsmicro-iters", 2000, "loop iterations per backend for -fsmicro")
	fsmDir := flag.String("fsmicro-dir", "", "host dir backing the -fsmicro hostfs/overlayfs rows (default: a temp dir)")
	neMsgs := flag.Int("netecho-msgs", 2000, "round trips per backend for -netecho")
	neSize := flag.Int("netecho-size", 64, "message size in bytes for -netecho")
	neBackends := flag.String("netecho-backends", "", "comma-separated -netecho backends (default: loopback,switch,host)")
	fleetGuests := flag.Int("fleet-guests", 200, "total guest count for -fleet (60% spinners, 30% syscallers, 10% poll-pair guests)")
	fleetWindow := flag.Duration("fleet-window", time.Second, "measurement window per -fleet row")
	fleetWorkers := flag.Int("fleet-workers", 0, "scheduler run slots for -fleet (0 = GOMAXPROCS)")
	fleetQuantum := flag.Duration("fleet-quantum", 0, "scheduler time slice for -fleet (0 = default)")
	fleetGomax := flag.String("fleet-gomax", "1,2,4,8", "comma-separated GOMAXPROCS values for -fleet")
	snapIters := flag.Int("snap-iters", 50, "sequential restores for -snap (latency sample)")
	snapFork := flag.Int("snap-fork", 100, "fan-out width for -snap (children restored from one image)")
	scaleList := flag.String("scales", "20000,60000,120000", "lua scales for -fig8time (bash/sqlite scaled down proportionally)")
	flag.Parse()

	tier, err := bench.ParseTier(*tierName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchvirt: %v\n", err)
		os.Exit(2)
	}
	bench.SetTier(tier)

	if *all {
		*t1, *t2, *t3, *f7, *f8t, *f8m, *f9, *fsm, *ne, *fleet, *snap, *opstats, *traffic = true, true, true, true, true, true, true, true, true, true, true, true, true
	}
	if !(*t1 || *t2 || *t3 || *f7 || *f8t || *f8m || *f9 || *fsm || *ne || *fleet || *snap || *opstats || *traffic) {
		*t1, *t2 = true, true
	}
	var report *bench.Report
	if *jsonOut {
		report = bench.NewReport()
		// Arm the obs plane so the report carries per-syscall/sched/net
		// latency histograms alongside the section tables.
		bench.EnableObs(false)
	}

	if *t1 {
		fmt.Println("== Table 1: porting effort ==")
		fmt.Print(bench.FormatTable1(bench.Table1()))
		fmt.Println()
	}
	if *t2 {
		fmt.Println("== Table 2: WALI syscall overheads ==")
		fmt.Print(bench.FormatTable2(bench.Table2(*iters)))
		fmt.Printf("calibrated dispatch overhead: %s/call\n\n", bench.CalibrateDispatch(20000))
	}
	if *t3 {
		fmt.Println("== Table 3: async signal polling cost ==")
		fmt.Print(bench.FormatTable3(bench.Table3()))
		fmt.Println()
	}
	if *f7 {
		fmt.Println("== Fig. 7: runtime breakdown ==")
		fmt.Print(bench.FormatFig7(bench.Fig7()))
		fmt.Println()
	}
	if *f8t {
		fmt.Println("== Fig. 8b-d: execution time (startup + run) ==")
		luaScales := parseScales(*scaleList)
		for _, app := range bench.Fig8Apps {
			scales := make([]int, len(luaScales))
			for i, s := range luaScales {
				switch app {
				case "lua":
					scales[i] = s
				case "bash":
					scales[i] = maxInt(2, s/8000)
				case "sqlite":
					scales[i] = maxInt(16, s/400)
				}
			}
			fmt.Print(bench.FormatFig8(bench.Fig8Time(app, scales)))
		}
		fmt.Println()
	}
	if *f8m {
		fmt.Println("== Fig. 8a: peak memory ==")
		fmt.Print(bench.FormatFig8Mem(bench.Fig8Mem()))
		fmt.Println()
	}
	if *f9 {
		fmt.Println("== Fig. 9: multi-guest syscall throughput ==")
		guests := parseScales(*guestList)
		if *guestList == "" {
			guests = bench.DefaultScaleoutGuests()
		}
		cfg := bench.ScaleoutConfig{
			Iters:     *scaleIters,
			Guests:    guests,
			WorkDir:   *scaleoutDir,
			SharedDir: *scaleoutRO,
		}
		if cfg.WorkDir != "" || cfg.SharedDir != "" {
			fmt.Printf("fs backing: work=%s shared-ro=%s\n", orMemfs(cfg.WorkDir), orNone(cfg.SharedDir))
		}
		pts := bench.Fig9ScaleoutCfg(cfg)
		if report != nil {
			report.Fig9 = pts
		}
		fmt.Print(bench.FormatFig9(pts))
	}
	if *ne {
		fmt.Println("== NetEcho: socket RTT across net backends ==")
		var backends []string
		for _, b := range strings.Split(*neBackends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				backends = append(backends, b)
			}
		}
		rows := bench.NetEcho(*neMsgs, *neSize, backends)
		if report != nil {
			report.NetEcho = rows
		}
		fmt.Print(bench.FormatNetEcho(rows))
		fmt.Println()
	}
	if *fleet {
		fmt.Println("== Fleet: multicore scheduler (spinner/syscall/poll mix) ==")
		n := *fleetGuests
		pairs := maxInt(1, n/20) // 10% of guests = 5% pairs
		cfg := bench.FleetConfig{
			Spinners:   maxInt(1, n*6/10),
			Syscallers: maxInt(1, n*3/10),
			PollPairs:  pairs,
			Workers:    *fleetWorkers,
			Quantum:    *fleetQuantum,
			Window:     *fleetWindow,
		}
		fmt.Print(bench.FormatFleet(bench.FleetSweep(cfg, parseScales(*fleetGomax))))
		fmt.Println()
	}
	if *snap {
		fmt.Println("== Snapshot / restore: cold-start latency and CoW fork fan-out ==")
		row := bench.SnapRestore(*snapIters, *snapFork)
		if report != nil {
			report.Snap = &row
		}
		fmt.Print(bench.FormatSnapRestore(row))
		fmt.Println()
	}
	if *opstats {
		fmt.Println("== OpStats: dynamic opcode profile + execution tiers ==")
		prof := bench.OpStatsProfile(*opstatsApp, *opstatsScale)
		if report != nil {
			report.Interpreter = prof.Tiers
		}
		fmt.Print(bench.FormatOpProfile(prof))
		fmt.Println()
	}
	if *traffic {
		fmt.Println("== Fabric: distributed-switch traffic patterns ==")
		var patterns []string
		for _, p := range strings.Split(*trafficPatterns, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, p)
			}
		}
		rows := bench.Traffic(bench.TrafficConfig{
			Nodes:        *trafficNodes,
			BytesPerFlow: *trafficBytes,
			Patterns:     patterns,
		})
		bp := bench.TrafficBackpressure(*trafficBytes, time.Millisecond)
		if report != nil {
			report.Fabric = &bench.FabricReport{Patterns: rows, Backpressure: &bp}
		}
		fmt.Print(bench.FormatTraffic(rows))
		fmt.Print(bench.FormatBackpressure(bp))
		fmt.Println()
	}
	if *fsm {
		fmt.Println("== VFS backends: open/pread64/close micro-benchmark ==")
		dir := *fsmDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gowali-fsmicro-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchvirt: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		fmt.Print(bench.FormatFSMicro(bench.FSMicro(*fsmIters, dir)))
	}
	if report != nil {
		report.Metrics = bench.ObsSnapshot()
		if report.Metrics != nil && len(report.Metrics.Histograms) > 0 {
			fmt.Println("== Metrics: obs-plane latency histograms (ns) ==")
			fmt.Print(bench.FormatMetrics(report.Metrics))
			fmt.Println()
		}
		path, err := report.Write(*jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchvirt: writing report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("json report: %s\n", path)
	}
}

func orMemfs(s string) string {
	if s == "" {
		return "memfs"
	}
	return s
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func parseScales(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{20000, 60000}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package gowali

// Repo-root benchmarks: one testing.B entry per table and figure of the
// paper's evaluation, all driving internal/bench. Run with
//
//	go test -bench=. -benchmem
//
// cmd/benchvirt prints the same data as formatted tables.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"gowali/internal/apps"
	"gowali/internal/bench"
	"gowali/internal/core"
	"gowali/internal/emu"
	"gowali/internal/interp"
	"gowali/internal/kernel/snap"
	"gowali/internal/linux"
	"gowali/internal/trace"
)

// BenchmarkTable2Syscalls measures the per-syscall WALI overhead for the
// paper's 30 representative syscalls (Table 2).
func BenchmarkTable2Syscalls(b *testing.B) {
	rows := bench.Table2(2000)
	for _, r := range rows {
		b.ReportMetric(float64(r.Overhead.Nanoseconds()), r.Name+"_ns")
	}
	// Also expose the calibration number Fig. 7 uses.
	b.ReportMetric(float64(bench.CalibrateDispatch(20000).Nanoseconds()), "dispatch_ns")
	_ = rows
}

// BenchmarkTable3Sigpoll measures safepoint polling cost per scheme
// (Table 3) on the compute-bound lua app.
func BenchmarkTable3Sigpoll(b *testing.B) {
	for _, scheme := range []interp.SafepointScheme{
		interp.SafepointNone, interp.SafepointLoop, interp.SafepointFunc, interp.SafepointEveryInst,
	} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			app, _ := apps.ByName("lua")
			for i := 0; i < b.N; i++ {
				w := core.New()
				w.Scheme = scheme
				_, status, err := apps.RunOn(w, app, 30000)
				if err != nil || status != 0 {
					b.Fatalf("status=%d err=%v", status, err)
				}
			}
		})
	}
}

// BenchmarkFig2SyscallProfile times a full profiling sweep of the app
// suite (Fig. 2's data collection).
func BenchmarkFig2SyscallProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profiles := bench.Fig2Profiles()
		if len(profiles) != 5 {
			b.Fatalf("%d profiles", len(profiles))
		}
	}
}

// BenchmarkFig7Breakdown times the runtime-attribution sweep (Fig. 7).
func BenchmarkFig7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig7()
		for _, r := range rows {
			if r.WaliPct > 25 {
				b.Fatalf("%s: wali share %.1f%% implausible", r.App, r.WaliPct)
			}
		}
	}
}

// BenchmarkFig9Scaleout times the multi-guest syscall-throughput sweep
// at a small fixed scale (1 and 2×NumCPU guests): a regression here
// means concurrent guests started serializing on kernel locks again.
func BenchmarkFig9Scaleout(b *testing.B) {
	guests := []int{1, 2 * runtime.NumCPU()}
	for i := 0; i < b.N; i++ {
		pts := bench.Fig9Scaleout(50, guests)
		for _, p := range pts {
			if p.PerSec <= 0 {
				b.Fatalf("N=%d degenerate throughput", p.Guests)
			}
		}
	}
}

// BenchmarkNetEcho measures socket echo RTT through the netstack
// backends: every read on both sides blocks in poll(2) first, so the
// reported rtt_ns is two event-driven poll wakeups plus the copies —
// the paper-floor comparison for the wait-queue readiness path (the
// old sampled path could not go below ~50µs/RTT).
func BenchmarkNetEcho(b *testing.B) {
	for _, backend := range []string{"loopback", "switch", "host"} {
		backend := backend
		b.Run(backend, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := bench.NetEcho(500, 64, []string{backend})
				b.ReportMetric(float64(rows[0].RTT.Nanoseconds()), "rtt_ns")
				b.ReportMetric(float64(rows[0].Wakeup.Nanoseconds()), "wakeup_ns")
			}
		})
	}
}

// BenchmarkFSMicroBackends prices the mount-table backends on the
// hottest file path — a guest open/pread64/close loop — against memfs,
// hostfs and overlayfs (ns/syscall reported per backend).
func BenchmarkFSMicroBackends(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		rows := bench.FSMicro(500, dir)
		for _, r := range rows {
			b.ReportMetric(float64(r.PerOp.Nanoseconds()), r.Backend+"_ns/syscall")
		}
	}
}

// BenchmarkFig9ScaleoutHostFS is the hostfs-backed scale-out variant:
// guest working files on a read-write hostfs mount plus one shared
// read-only hostfs image every guest re-reads each iteration.
func BenchmarkFig9ScaleoutHostFS(b *testing.B) {
	work, shared := b.TempDir(), b.TempDir()
	guests := []int{1, 2 * runtime.NumCPU()}
	for i := 0; i < b.N; i++ {
		pts := bench.Fig9ScaleoutCfg(bench.ScaleoutConfig{
			Iters: 50, Guests: guests, WorkDir: work, SharedDir: shared,
		})
		for _, p := range pts {
			if p.PerSec <= 0 {
				b.Fatalf("N=%d degenerate throughput", p.Guests)
			}
		}
	}
}

// BenchmarkFig8 runs the three-way virtualization comparison per app and
// backend (Fig. 8b-d). The per-backend sub-benchmarks expose slope
// comparisons directly in ns/op.
func BenchmarkFig8(b *testing.B) {
	scales := map[string]int{"lua": 200000, "bash": 8, "sqlite": 128}
	for _, name := range bench.Fig8Apps {
		app, err := apps.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		scale := scales[name]
		b.Run(name+"/native", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				app.Native(scale)
			}
		})
		b.Run(name+"/wali", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := core.New()
				if app.Setup != nil {
					app.Setup(w)
				}
				m := app.Build(scale)
				p, err := w.SpawnModule(m, name, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				status, runErr := p.Run()
				w.WaitAll()
				if runErr != nil || status != 0 {
					b.Fatalf("status=%d err=%v", status, runErr)
				}
			}
		})
		b.Run(name+"/qemu", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := apps.RISCFor(name, scale)
				if err != nil {
					b.Fatal(err)
				}
				m := emu.New(prog, 1<<20, nil)
				if err := m.Run(1 << 62); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Startup isolates the startup intercepts (Fig. 8's
// crossover argument): WALI instantiation vs container creation.
func BenchmarkFig8Startup(b *testing.B) {
	b.Run("wali_instantiate", func(b *testing.B) {
		app, _ := apps.ByName("lua")
		m := app.Build(1000)
		for i := 0; i < b.N; i++ {
			w := core.New()
			apps.SetupLua(w.Kernel)
			if _, err := w.SpawnModule(m, "lua", nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("docker_create", func(b *testing.B) {
		pts := bench.Fig8Time("lua", []int{50000})
		var docker, wali time.Duration
		for _, p := range pts {
			switch p.App {
			case bench.BackendDocker:
				docker = p.Startup
			case bench.BackendWALI:
				wali = p.Startup
			}
		}
		b.ReportMetric(float64(docker.Nanoseconds()), "docker_startup_ns")
		b.ReportMetric(float64(wali.Nanoseconds()), "wali_startup_ns")
		if docker < wali {
			b.Fatalf("container startup (%v) should exceed WALI startup (%v)", docker, wali)
		}
	})
}

// BenchmarkAblationMmapAllocator compares the paper's single-bump mmap
// bookkeeping against the free-list allocator (the DESIGN.md ablation).
func BenchmarkAblationMmapAllocator(b *testing.B) {
	run := func(b *testing.B, bump bool) {
		app, _ := apps.ByName("lua") // mmap/munmap every 4096 iterations
		for i := 0; i < b.N; i++ {
			w := core.New()
			apps.SetupLua(w.Kernel)
			m := app.Build(100000)
			p, err := w.SpawnModule(m, "lua", nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			p.Pool.Bump = bump
			status, runErr := p.Run()
			w.WaitAll()
			if runErr != nil || status != 0 {
				b.Fatalf("status=%d err=%v", status, runErr)
			}
			if bump {
				b.ReportMetric(float64(len(p.Inst.Mem.Data)), "mem_bytes")
			}
		}
	}
	b.Run("bump", func(b *testing.B) { run(b, true) })
	b.Run("freelist", func(b *testing.B) { run(b, false) })
}

// snapRestoreSetup spawns and warms the snapshot guest, checkpoints it,
// and returns engine, live guest and image for the restore benchmarks.
func snapRestoreSetup(b *testing.B) (*core.WALI, *core.Process, *snap.Image) {
	b.Helper()
	w := core.New()
	c, err := interp.Compile(bench.BuildSnapGuest())
	if err != nil {
		b.Fatal(err)
	}
	p, err := w.SpawnCompiled(c, "snapguest", []string{"snapguest"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	p.RunAsync()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, n := w.SyscallStats(p.KP.PID); n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("snapshot guest did not warm up")
		}
		time.Sleep(100 * time.Microsecond)
	}
	img, err := w.Snapshot(p)
	if err != nil {
		b.Fatal(err)
	}
	return w, p, img
}

func snapRestoreTeardown(b *testing.B, w *core.WALI, p *core.Process) {
	b.Helper()
	p.KP.PostSignal(linux.SIGKILL)
	<-p.Done()
	w.WaitAll()
}

// BenchmarkRestore measures the snapshot cold start: building a fully
// runnable process from a warmed image (hash-cache module, CoW memory,
// re-opened fd table). The spawn-path baseline is
// BenchmarkSpawnCachedModule — the whole point of the image is beating
// it by well over 5×, since restore skips instantiation, zero-fill and
// the guest's own warm-up entirely.
func BenchmarkRestore(b *testing.B) {
	w, p, img := snapRestoreSetup(b)
	defer snapRestoreTeardown(b, w, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := w.Restore(img, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		ch.Inst.Mem.WriteU64(bench.SnapReqAddr, 1)
		if status, runErr := ch.Resume(); runErr != nil || status != 0 {
			b.Fatalf("status=%d err=%v", status, runErr)
		}
		b.StartTimer()
	}
}

// BenchmarkRestoreServe is the end-to-end invocation: restore, inject a
// request into the still-parked child, resume, and wait for its answer
// and exit — the serverless cold-start-to-response number.
func BenchmarkRestoreServe(b *testing.B) {
	w, p, img := snapRestoreSetup(b)
	defer snapRestoreTeardown(b, w, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := w.Restore(img, nil)
		if err != nil {
			b.Fatal(err)
		}
		ch.Inst.Mem.WriteU64(bench.SnapReqAddr, uint64(i+1))
		if status, runErr := ch.Resume(); runErr != nil || status != 0 {
			b.Fatalf("status=%d err=%v", status, runErr)
		}
	}
}

// BenchmarkForkFanOut measures fleet fan-out: 100 copy-on-write
// children restored back-to-back from one image per iteration (the
// children run and exit untimed). heap_bytes/child comes from the
// measured fork-sharing test; here the metric is restores/sec.
func BenchmarkForkFanOut(b *testing.B) {
	const fanOut = 100
	w, p, img := snapRestoreSetup(b)
	defer snapRestoreTeardown(b, w, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		children := make([]*core.Process, fanOut)
		var err error
		for j := range children {
			if children[j], err = w.Restore(img, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for j, ch := range children {
			ch.Inst.Mem.WriteU64(bench.SnapReqAddr, uint64(j+1))
			ch.ResumeAsync()
		}
		for _, ch := range children {
			if status, runErr := ch.Wait(); runErr != nil || status != 0 {
				b.Fatalf("status=%d err=%v", status, runErr)
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(fanOut), "forks/op")
}

// BenchmarkInterpreter measures raw bytecode throughput (context for the
// §4.3 "engine speed is orthogonal" argument). It doubles as the
// copy-on-write barrier guard: these guests never run under CoW, so the
// barrier's inactive cost (one nil check per memory access) must keep
// this within 2%% of its pre-CoW baseline.
func BenchmarkInterpreter(b *testing.B) {
	app, _ := apps.ByName("lua")
	w := core.New()
	apps.SetupLua(w.Kernel)
	m := app.Build(100000)
	p, err := w.SpawnModule(m, "lua", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	p.Run()
	steps := p.Exec.Steps
	b.ReportMetric(float64(steps), "wasm_instructions")
	for i := 0; i < b.N; i++ {
		w := core.New()
		apps.SetupLua(w.Kernel)
		p, _ := w.SpawnModule(m, "lua", nil, nil)
		p.Run()
		w.WaitAll()
	}
}

// BenchmarkWASILayer measures the layering tax: fd_write through
// WASI-over-WALI vs the direct WALI write (the §4.1 E2 system).
func BenchmarkWASILayer(b *testing.B) {
	env := benchWASIEnv(b)
	b.Run("wasi_fd_write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if errno := env.call("fd_write", 1, 500, 1, 508); errno != 0 {
				b.Fatalf("errno %d", errno)
			}
		}
	})
	b.Run("wali_write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ret := env.p.Syscall(env.p.Exec, "write", 1, 1000, 13); ret < 0 {
				b.Fatalf("ret %d", ret)
			}
		}
	})
}

type wasiBenchEnv struct {
	p    *core.Process
	call func(name string, args ...uint64) uint32
}

func benchWASIEnv(b *testing.B) *wasiBenchEnv {
	b.Helper()
	// Reuse the trampoline from the wasi tests via a local rebuild: a
	// module importing fd_write and exporting a forwarder.
	w := core.New()
	layer := attachWASI(w)
	_ = layer
	m := wasiTrampoline()
	p, err := w.SpawnModule(m, "wasibench", nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	copy(p.Inst.Mem.Data[1000:], "bench payload")
	p.Inst.Mem.WriteU32(500, 1000)
	p.Inst.Mem.WriteU32(504, 13)
	fidx, _ := m.ExportedFunc("w_fd_write")
	return &wasiBenchEnv{
		p: p,
		call: func(name string, args ...uint64) uint32 {
			res, err := p.Exec.Invoke(fidx, args...)
			if err != nil {
				b.Fatal(err)
			}
			return uint32(res[0])
		},
	}
}

// BenchmarkTrace measures collector overhead (the Fig. 2 instrumentation
// must not distort profiles).
func BenchmarkTrace(b *testing.B) {
	w := core.New()
	col := trace.NewCollector()
	col.Attach(w)
	app, _ := apps.ByName("lua")
	for i := 0; i < b.N; i++ {
		if _, status, err := apps.RunOn(w, app, 20000); err != nil || status != 0 {
			b.Fatalf("status=%d err=%v", status, err)
		}
	}
	d, n := col.Total()
	b.ReportMetric(float64(d.Nanoseconds())/float64(max64(n, 1)), "ns_per_syscall")
}

func max64(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

var _ = fmt.Sprintf // keep fmt for debug formatting in helpers

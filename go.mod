module gowali

go 1.24

// Package bench is the public evaluation surface of the gowali embedding
// API: the tables and figures of the paper's §2/§4 evaluation
// (cmd/benchvirt and cmd/syscall-prof print them). It re-exports the
// supported harness entry points so the tools never import
// gowali/internal/... directly.
package bench

import (
	"time"

	"gowali"
	ib "gowali/internal/bench"
	"gowali/internal/trace"
)

// Row and point types of the rendered artifacts.
type (
	Table1Row  = ib.Table1Row
	Table2Row  = ib.Table2Row
	Table3Row  = ib.Table3Row
	Fig8Point  = ib.Fig8Point
	Fig8MemRow = ib.Fig8MemRow
	Fig9Point  = ib.Fig9Point
	FSMicroRow = ib.FSMicroRow
	NetEchoRow = ib.NetEchoRow
	FleetRow   = ib.FleetRow
	SnapRow    = ib.SnapRow
	OpProfile  = ib.OpProfile
	OpTierRow  = ib.OpTierRow
	Report     = ib.Report

	TrafficRow      = ib.TrafficRow
	BackpressureRow = ib.BackpressureRow
	FabricReport    = ib.FabricReport

	SyscallLatencyRow = ib.SyscallLatencyRow
)

// MetricsSnapshot is the obs-plane snapshot embedded in Report.Metrics.
type MetricsSnapshot = gowali.MetricsSnapshot

// EnableObs arms a shared metrics registry — and, when withTrace is
// set, an event tracer — for every engine, kernel, scheduler and
// switch built by subsequent harness runs. benchvirt -json calls it so
// reports carry latency histograms; leave it off for overhead-free
// measurement runs.
func EnableObs(withTrace bool) { ib.EnableObs(withTrace) }

// ObsSnapshot captures the accumulated obs metrics, or nil when obs is
// off. Assign it to Report.Metrics before writing.
func ObsSnapshot() *MetricsSnapshot { return ib.ObsSnapshot() }

// FormatMetrics renders a snapshot as a human-readable summary with a
// p50/p99/p999 latency table.
func FormatMetrics(s *MetricsSnapshot) string { return ib.FormatMetrics(s) }

// SyscallLatencyProfile runs the app suite and returns per-syscall
// handler-latency histograms sorted by call count (syscall-prof -lat).
func SyscallLatencyProfile() []SyscallLatencyRow { return ib.SyscallLatencyProfile() }

// FormatSyscallLatency renders the per-syscall latency table.
func FormatSyscallLatency(rows []SyscallLatencyRow) string { return ib.FormatSyscallLatency(rows) }

// ExecTier selects the execution engine every harness runs on; see
// gowali.WithExecTier for the tiers.
type ExecTier = gowali.ExecTier

// SetTier selects the execution engine for all subsequent harness runs
// (benchvirt's -tier flag). Default: the fused superinstruction tier.
func SetTier(t ExecTier) { ib.SetTier(t) }

// Tier reports the currently selected execution engine.
func Tier() ExecTier { return ib.Tier() }

// ParseTier parses a -tier flag value ("fused", "ir" or "wire").
func ParseTier(s string) (ExecTier, error) { return gowali.ParseTier(s) }

// FleetConfig parameterizes a fleet run: the guest class mix (CPU
// spinners, syscall loops, poll-blocked echo pairs), the scheduler's
// worker count and quantum, and the measurement window.
type FleetConfig = ib.FleetConfig

// ScaleoutConfig parameterizes Fig9ScaleoutCfg's filesystem backing:
// a host directory mounted read-write for guest working files, and a
// shared read-only hostfs image every guest re-reads each iteration.
type ScaleoutConfig = ib.ScaleoutConfig

// Profile is one Fig. 2 row: an application and its syscall counts.
type Profile = trace.Profile

// Breakdown is one Fig. 7 bar: runtime split across the system stack.
type Breakdown = trace.Breakdown

// Fig8Apps are the apps compared across virtualization backends.
var Fig8Apps = ib.Fig8Apps

// Table1 reports the porting matrix (Table 1).
func Table1() []Table1Row { return ib.Table1() }

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string { return ib.FormatTable1(rows) }

// Table2 measures per-syscall WALI overheads (Table 2).
func Table2(iters int) []Table2Row { return ib.Table2(iters) }

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string { return ib.FormatTable2(rows) }

// CalibrateDispatch measures the WALI-intrinsic per-call dispatch cost.
func CalibrateDispatch(iters int) time.Duration { return ib.CalibrateDispatch(iters) }

// Table3 measures safepoint polling cost per scheme (Table 3).
func Table3() []Table3Row { return ib.Table3() }

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string { return ib.FormatTable3(rows) }

// Fig2Profiles collects the syscall profile of every runnable app.
func Fig2Profiles() []Profile { return ib.Fig2Profiles() }

// FormatFig2 renders the Fig. 2 heat map.
func FormatFig2(profiles []Profile) string { return ib.FormatFig2(profiles) }

// FormatFig3 renders the Fig. 3 ISA-commonality analysis.
func FormatFig3() string { return ib.FormatFig3() }

// Fig7 computes the runtime breakdown across the app suite (Fig. 7).
func Fig7() []Breakdown { return ib.Fig7() }

// FormatFig7 renders Fig. 7.
func FormatFig7(rows []Breakdown) string { return ib.FormatFig7(rows) }

// Fig8Time measures startup+run time across backends (Fig. 8b-d).
func Fig8Time(name string, scales []int) []Fig8Point { return ib.Fig8Time(name, scales) }

// FormatFig8 renders a Fig. 8 time series.
func FormatFig8(pts []Fig8Point) string { return ib.FormatFig8(pts) }

// Fig8Mem measures peak memory across backends (Fig. 8a).
func Fig8Mem() []Fig8MemRow { return ib.Fig8Mem() }

// FormatFig8Mem renders Fig. 8a.
func FormatFig8Mem(rows []Fig8MemRow) string { return ib.FormatFig8Mem(rows) }

// Fig9Scaleout measures aggregate syscall throughput for N concurrent
// cached-module guests on one kernel (the scale-out curve). A nil or
// empty guests slice uses DefaultScaleoutGuests.
func Fig9Scaleout(iters int, guests []int) []Fig9Point { return ib.Fig9Scaleout(iters, guests) }

// DefaultScaleoutGuests returns the standard guest counts for the
// scale-out curve: powers of two through 4×NumCPU.
func DefaultScaleoutGuests() []int { return ib.DefaultScaleoutGuests() }

// Fig9ScaleoutCfg is Fig9Scaleout with configurable filesystem backing
// (hostfs-backed working files, shared read-only image).
func Fig9ScaleoutCfg(cfg ScaleoutConfig) []Fig9Point { return ib.Fig9ScaleoutCfg(cfg) }

// FormatFig9 renders the scale-out curve.
func FormatFig9(pts []Fig9Point) string { return ib.FormatFig9(pts) }

// NetEcho measures socket round-trip latency and throughput through
// the netstack backends: a poll-driven guest echo server against a
// client sending msgs size-byte messages. backends selects rows from
// "loopback" (one kernel), "switch" (two kernels over a virtual
// switch) and "host" (a real host TCP client through HostNet); nil
// runs all three. Every read on both sides blocks in poll first, so
// RTT/2 bounds the poll wakeup latency.
func NetEcho(msgs, size int, backends []string) []NetEchoRow {
	return ib.NetEcho(msgs, size, backends)
}

// FormatNetEcho renders the echo table.
func FormatNetEcho(rows []NetEchoRow) string { return ib.FormatNetEcho(rows) }

// TrafficConfig parameterizes the distributed-fabric traffic runs:
// fabric size, per-flow bytes and the pattern subset.
type TrafficConfig = ib.TrafficConfig

// Traffic drives htsim-style traffic patterns (permutation, incast,
// all-to-all) between guest fleets on a distributed switch fabric:
// one single-kernel switch per node, each with its own subnet, joined
// over real localhost TCP trunks in a star, so cross-spoke flows
// relay through the hub. Every receiver exits nonzero on a lost byte;
// per-flow completion times give Jain's fairness index.
func Traffic(cfg TrafficConfig) []TrafficRow { return ib.Traffic(cfg) }

// FormatTraffic renders the traffic-pattern table.
func FormatTraffic(rows []TrafficRow) string { return ib.FormatTraffic(rows) }

// TrafficBackpressure measures the slow-receiver case: one flow
// across a two-switch trunk where the receiver drains at a fixed
// rate. Bounded buffering pins the sender to ≈ the drain rate
// (Stall ≈ 1); unbounded buffering would let it finish at trunk
// speed.
func TrafficBackpressure(bytes int, delay time.Duration) BackpressureRow {
	return ib.TrafficBackpressure(bytes, delay)
}

// FormatBackpressure renders the slow-receiver probe.
func FormatBackpressure(r BackpressureRow) string { return ib.FormatBackpressure(r) }

// FleetOnce runs one scheduler-fleet window at the current GOMAXPROCS:
// an adversarial mix of CPU spinners, syscall loops and poll-blocked
// echo pairs multiplexed onto the slot-token scheduler, reporting
// aggregate throughput, spinner fairness and in-guest round-trip
// latency (the starvation bound).
func FleetOnce(cfg FleetConfig) FleetRow { return ib.FleetOnce(cfg) }

// FleetSweep runs the fleet at each GOMAXPROCS value — the multicore
// scaling curve.
func FleetSweep(cfg FleetConfig, gomaxprocs []int) []FleetRow {
	return ib.FleetSweep(cfg, gomaxprocs)
}

// FormatFleet renders the fleet table.
func FormatFleet(rows []FleetRow) string { return ib.FormatFleet(rows) }

// SnapRestore runs the snapshot/restore benchmark: warm one guest,
// checkpoint it, restore it iters times sequentially (cold-start
// latency), then fan out forkN copy-on-write children from the image
// at once (fork rate, per-child heap vs a full memory copy, dirtied
// pages). Zero arguments pick the defaults (50 restores, 100 forks).
func SnapRestore(iters, forkN int) SnapRow { return ib.SnapRestore(iters, forkN) }

// FormatSnapRestore renders the snapshot/restore table.
func FormatSnapRestore(r SnapRow) string { return ib.FormatSnapRestore(r) }

// OpStatsProfile profiles a built-in app's dynamic opcode/sequence
// frequencies on the wire tier (the evidence base for superinstruction
// selection), then times the identical workload on every execution tier,
// reporting ns/instr and the fraction of instructions retired inside
// fused slots (coverage).
func OpStatsProfile(app string, scale int) OpProfile { return ib.OpStatsProfile(app, scale) }

// FormatOpProfile renders the opstats profile and per-tier cost table.
func FormatOpProfile(r OpProfile) string { return ib.FormatOpProfile(r) }

// NewReport creates an empty machine-readable benchmark report stamped
// with the environment; benchvirt -json fills and writes it.
func NewReport() *Report { return ib.NewReport() }

// FSMicro measures a guest open/pread64/close loop against the memfs,
// hostfs and overlayfs mount backends (hostDir backs the host-mapped
// rows).
func FSMicro(iters int, hostDir string) []FSMicroRow { return ib.FSMicro(iters, hostDir) }

// FormatFSMicro renders the backend micro-benchmark, memfs as baseline.
func FormatFSMicro(rows []FSMicroRow) string { return ib.FormatFSMicro(rows) }
